// Multilevel graph partitioner tests (the MeTiS-style baseline engine).
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "graph/gmetrics.hpp"
#include "models/graph_model.hpp"
#include "partition/gp/gbisect.hpp"
#include "partition/gp/ginitial.hpp"
#include "partition/gp/gkway.hpp"
#include "partition/gp/gpartitioner.hpp"
#include "partition/gp/grecursive.hpp"
#include "partition/gp/grefine.hpp"
#include "partition/gp/match.hpp"
#include "sparse/generators.hpp"
#include "util/rng.hpp"

namespace fghp::part {
namespace {

using gp::GPartition;
using gp::Graph;

Graph random_graph(idx_t n, idx_t avgDeg, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::tuple<idx_t, idx_t, weight_t>> edges;
  const idx_t m = n * avgDeg / 2;
  for (idx_t e = 0; e < m; ++e) {
    const idx_t u = rng.uniform(0, n - 1);
    idx_t v = rng.uniform(0, n - 1);
    if (u == v) v = (v + 1) % n;
    edges.emplace_back(u, v, rng.uniform(1, 3));
  }
  return Graph(n, std::move(edges));
}

Graph stencil_graph(idx_t nx, idx_t ny) {
  return model::build_standard_graph(sparse::stencil2d(nx, ny));
}

// -------------------------------------------------------------- match ----

TEST(Match, HeavyEdgePairsAtMostTwo) {
  const Graph g = random_graph(120, 6, 1);
  Rng rng(2);
  const auto map = gpm::match_heavy_edge(g, rng);
  std::vector<idx_t> count(120, 0);
  for (idx_t c : map) ++count[static_cast<std::size_t>(c)];
  for (idx_t c : count) EXPECT_LE(c, 2);
}

TEST(Match, HeavyEdgePrefersHeaviestNeighbor) {
  // Star: center 0, leaves 1..3; edge to 2 is heaviest. Whenever vertex 0 is
  // visited before being claimed by a leaf, it must choose 2 — so across
  // random visit orders, pairing (0,2) occurs whenever 0 or 2 goes first
  // (probability 1/2), while a leaf claiming the center happens otherwise.
  const Graph g(4, {{0, 1, 1}, {0, 2, 10}, {0, 3, 1}});
  int pair02 = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    Rng r(static_cast<std::uint64_t>(trial));
    const auto m = gpm::match_heavy_edge(g, r);
    if (m[0] == m[2]) ++pair02;
  }
  EXPECT_GT(pair02, trials / 4);  // expected ~trials/2
}

TEST(Match, ContractPreservesWeightsAndMergesEdges) {
  const Graph g(4, {{0, 1, 1}, {0, 2, 2}, {1, 3, 3}, {2, 3, 4}}, {1, 2, 3, 4});
  const gpm::ClusterMap map = {0, 0, 1, 1};
  const auto level = gpm::contract_graph(g, map);
  EXPECT_EQ(level.coarse.num_vertices(), 2);
  EXPECT_EQ(level.coarse.total_vertex_weight(), 10);
  EXPECT_EQ(level.coarse.num_edges(), 1);              // (0,2)+(1,3) merge
  EXPECT_EQ(level.coarse.neighbors(0)[0].weight, 5);   // 2 + 3
  EXPECT_EQ(level.coarse.total_edge_weight(), 5);      // intra-cluster edges vanish
}

TEST(Match, ProjectedCutInvariantUnderContraction) {
  const Graph g = random_graph(80, 6, 5);
  Rng rng(6);
  const auto level = gpm::contract_graph(g, gpm::match_heavy_edge(g, rng));
  std::vector<idx_t> coarseAssign(static_cast<std::size_t>(level.coarse.num_vertices()));
  for (auto& a : coarseAssign) a = rng.uniform(0, 2);
  const GPartition cp(level.coarse, 3, coarseAssign);
  std::vector<idx_t> fineAssign(80);
  for (idx_t v = 0; v < 80; ++v)
    fineAssign[static_cast<std::size_t>(v)] =
        coarseAssign[static_cast<std::size_t>(level.fineToCoarse[static_cast<std::size_t>(v)])];
  const GPartition fp(g, 3, fineAssign);
  EXPECT_EQ(gp::edge_cut(level.coarse, cp), gp::edge_cut(g, fp));
}

// ----------------------------------------------------------- initial ----

TEST(GInitial, GggReachesTarget) {
  const Graph g = stencil_graph(12, 12);
  Rng rng(7);
  const GPartition p = gpi::ggg_bisection(g, {g.total_vertex_weight() / 2,
                                              g.total_vertex_weight() -
                                                  g.total_vertex_weight() / 2},
                                          rng);
  EXPECT_TRUE(p.complete());
  const double half = static_cast<double>(g.total_vertex_weight()) / 2.0;
  EXPECT_NEAR(static_cast<double>(p.part_weight(1)), half, half * 0.1);
}

TEST(GInitial, GggGrowsConnectedRegionOnMesh) {
  // On a mesh, greedy growing should produce a much better cut than random.
  const Graph g = stencil_graph(16, 16);
  Rng rng(8);
  const std::array<weight_t, 2> t = {g.total_vertex_weight() / 2,
                                     g.total_vertex_weight() - g.total_vertex_weight() / 2};
  const GPartition grown = gpi::ggg_bisection(g, t, rng);
  const GPartition random = gpi::random_gbisection(g, t, rng);
  EXPECT_LT(gp::edge_cut(g, grown), gp::edge_cut(g, random) / 2);
}

// ---------------------------------------------------------------- FM ----

TEST(GraphFm, NeverWorsensCut) {
  PartitionConfig cfg;
  gpr::GraphFM fm(cfg);
  for (int trial = 0; trial < 15; ++trial) {
    const Graph g = random_graph(90, 6, 100 + static_cast<std::uint64_t>(trial));
    Rng rng(static_cast<std::uint64_t>(trial));
    std::vector<idx_t> assign(90);
    for (auto& a : assign) a = rng.uniform(0, 1);
    GPartition p(g, 2, assign);
    const weight_t before = gpr::GraphFM::compute_cut(g, p);
    const weight_t total = g.total_vertex_weight();
    const weight_t after = fm.refine(g, p, {total, total}, rng);
    EXPECT_LE(after, before);
    EXPECT_EQ(after, gpr::GraphFM::compute_cut(g, p));
  }
}

TEST(GraphFm, FindsZeroCutOnDisconnectedHalves) {
  std::vector<std::tuple<idx_t, idx_t, weight_t>> edges;
  Rng rng(9);
  for (int e = 0; e < 60; ++e) {
    const idx_t base = e % 2 == 0 ? 0 : 10;
    idx_t u = base + rng.uniform(0, 9);
    idx_t v = base + rng.uniform(0, 9);
    if (u == v) v = base + (v - base + 1) % 10;
    edges.emplace_back(u, v, 1);
  }
  const Graph g(20, std::move(edges));
  std::vector<idx_t> assign(20);
  for (idx_t v = 0; v < 20; ++v) assign[static_cast<std::size_t>(v)] = v % 2;
  GPartition p(g, 2, assign);
  PartitionConfig cfg;
  cfg.maxFmPasses = 10;  // the awful start needs several passes to unwind
  gpr::GraphFM fm(cfg);
  Rng r2(10);
  // One unit of balance slack: a perfectly tight cap of 10/10 would forbid
  // every single move from the balanced start.
  EXPECT_EQ(fm.refine(g, p, {11, 11}, r2), 0);
}

TEST(GraphFm, RepairsImbalance) {
  const Graph g = random_graph(100, 4, 11);
  GPartition p(g, 2, std::vector<idx_t>(100, 0));
  PartitionConfig cfg;
  gpr::GraphFM fm(cfg);
  Rng rng(12);
  fm.refine(g, p, {55, 55}, rng);
  EXPECT_LE(p.part_weight(0), 55);
  EXPECT_LE(p.part_weight(1), 55);
}

// ----------------------------------------------------------- recursive ----

TEST(GRecursive, TelescopingEdgeCut) {
  PartitionConfig cfg;
  for (idx_t K : {2, 3, 4, 8}) {
    const Graph g = stencil_graph(14, 14);
    Rng rng(cfg.seed);
    const auto result = gprb::partition_graph_recursive(g, K, cfg, rng);
    EXPECT_EQ(result.sumOfBisectionCuts, gp::edge_cut(g, result.partition)) << "K=" << K;
  }
}

// ------------------------------------------------------------ gkway ----

TEST(GKway, NeverWorsensAndReportsGain) {
  PartitionConfig cfg;
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = random_graph(120, 6, 300 + static_cast<std::uint64_t>(trial));
    const idx_t K = 5;
    std::vector<idx_t> assign(120);
    for (idx_t v = 0; v < 120; ++v) assign[static_cast<std::size_t>(v)] = v % K;
    GPartition p(g, K, assign);
    const weight_t before = gp::edge_cut(g, p);
    Rng rng(static_cast<std::uint64_t>(trial));
    const weight_t gain = gpk::gkway_refine(g, p, cfg, rng);
    const weight_t after = gp::edge_cut(g, p);
    EXPECT_EQ(before - after, gain);
    EXPECT_LE(after, before);
  }
}

TEST(GKway, PreservesBalance) {
  PartitionConfig cfg;
  const Graph g = stencil_graph(16, 16);
  const idx_t K = 8;
  std::vector<idx_t> assign(static_cast<std::size_t>(g.num_vertices()));
  for (std::size_t v = 0; v < assign.size(); ++v) assign[v] = static_cast<idx_t>(v) % K;
  GPartition p(g, K, assign);
  Rng rng(7);
  gpk::gkway_refine(g, p, cfg, rng);
  EXPECT_TRUE(gp::is_balanced(g, p, cfg.epsilon));
}

TEST(GKway, ImprovesRandomStartOnMesh) {
  // Note: a perfectly striped start is a plateau for single-vertex greedy
  // moves (every move has negative gain), so the improvement check uses a
  // random start where positive-gain moves abound.
  PartitionConfig cfg;
  cfg.kwayRefinePasses = 6;
  const Graph g = stencil_graph(20, 20);
  Rng assignRng(8);
  std::vector<idx_t> assign(static_cast<std::size_t>(g.num_vertices()));
  for (auto& a : assign) a = assignRng.uniform(0, 3);
  GPartition p(g, 4, assign);
  const weight_t before = gp::edge_cut(g, p);
  Rng rng(9);
  gpk::gkway_refine(g, p, cfg, rng);
  EXPECT_LT(static_cast<double>(gp::edge_cut(g, p)), 0.7 * static_cast<double>(before));
}

// -------------------------------------------------------------- facade ----

class GpPartitionerSweep : public ::testing::TestWithParam<idx_t> {};

TEST_P(GpPartitionerSweep, BalancedAndSane) {
  const idx_t K = GetParam();
  const Graph g = stencil_graph(20, 20);
  PartitionConfig cfg;
  const GpResult r = partition_graph(g, K, cfg);
  EXPECT_TRUE(r.partition.complete());
  EXPECT_TRUE(gp::is_balanced(g, r.partition, cfg.epsilon)) << "K=" << K;
  EXPECT_EQ(r.edgeCut, gp::edge_cut(g, r.partition));
  if (K > 1) {
    std::set<idx_t> used;
    for (idx_t v = 0; v < g.num_vertices(); ++v) used.insert(r.partition.part_of(v));
    EXPECT_EQ(used.size(), static_cast<std::size_t>(K));
    // A 2D mesh bisected K ways should have cut O(K * sqrt(n)); random
    // would be O(edges). Loose sanity bound: under 35% of total edge weight
    // (K = 16 on a 20x20 mesh already needs ~21% for perfect 5x5 blocks).
    EXPECT_LT(static_cast<double>(r.edgeCut),
              0.35 * static_cast<double>(g.total_edge_weight()));
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, GpPartitionerSweep, ::testing::Values(1, 2, 4, 8, 16));

TEST(GpPartitioner, DeterministicInSeed) {
  const Graph g = stencil_graph(15, 15);
  PartitionConfig cfg;
  cfg.seed = 5;
  const GpResult a = partition_graph(g, 8, cfg);
  const GpResult b = partition_graph(g, 8, cfg);
  EXPECT_EQ(a.partition.assignment(), b.partition.assignment());
}

TEST(GpPartitioner, WeightedVerticesBalanceByWeight) {
  // Vertex weights = row nonzero counts (the standard graph model's load).
  const sparse::Csr a = sparse::random_square(300, 6, 13);
  const Graph g = model::build_standard_graph(a);
  PartitionConfig cfg;
  const GpResult r = partition_graph(g, 8, cfg);
  EXPECT_TRUE(gp::is_balanced(g, r.partition, cfg.epsilon));
}

}  // namespace
}  // namespace fghp::part
