// Characterization ("golden") tests for the SpMV plan -> compiled-image
// pipeline.
//
// These pin, as FNV-1a hashes, (1) the full content of the SpmvPlan built
// from a fine-grain decomposition, (2) every slot table of the compiled
// execution image with the cache reorder on and off, and (3) the bits of the
// executed y = A x, for fixed (generator matrix, seed, K) at 1, 2 and 8
// threads. They are the safety net for refactors of the execution core: any
// change to schedule emission order, slot assignment, message translation or
// summation order shows up as a hash mismatch here.
//
// Regenerating: FGHP_GOLDEN_PRINT=1 ./test_exec_golden prints the current
// signatures in the exact table form below. Only paste new values when an
// output change is *intended* — this file exists to make silent drift loud.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "models/finegrain.hpp"
#include "sparse/generators.hpp"
#include "sparse/reorder.hpp"
#include "spmv/compiled.hpp"
#include "spmv/plan.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace fghp {
namespace {

std::uint64_t fnv1a(const std::vector<std::uint64_t>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (std::uint64_t u : v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (u >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

void push(std::vector<std::uint64_t>& w, idx_t v) {
  w.push_back(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
}
void push(std::vector<std::uint64_t>& w, const std::vector<idx_t>& v) {
  push(w, static_cast<idx_t>(v.size()));
  for (idx_t x : v) push(w, x);
}
void push(std::vector<std::uint64_t>& w, const std::vector<double>& v) {
  push(w, static_cast<idx_t>(v.size()));
  for (double x : v) w.push_back(std::bit_cast<std::uint64_t>(x));
}
void push(std::vector<std::uint64_t>& w, const std::vector<spmv::Msg>& msgs) {
  push(w, static_cast<idx_t>(msgs.size()));
  for (const spmv::Msg& m : msgs) {
    push(w, m.peer);
    push(w, m.pairIndex);
    push(w, m.ids);
  }
}

/// Every field of the plan, in declaration order.
std::uint64_t plan_hash(const spmv::SpmvPlan& plan) {
  std::vector<std::uint64_t> w;
  push(w, plan.numProcs);
  push(w, plan.numRows);
  push(w, plan.numCols);
  for (const spmv::ProcPlan& pp : plan.procs) {
    push(w, pp.rows);
    push(w, pp.cols);
    push(w, pp.vals);
    push(w, pp.ownedX);
    push(w, pp.ownedY);
    push(w, pp.xSends);
    push(w, pp.xRecvs);
    push(w, pp.ySends);
    push(w, pp.yRecvs);
  }
  return fnv1a(w);
}

/// Every table of the compiled image: the prefix offsets, the task CSR, and
/// all gather/scatter/message translations. The push order is the field
/// order of the pre-refactor SpMV-specific CompiledPlan (rowOff, xOff,
/// ownXOff, ...), expressed through the generic image's x = in[0] / y = out
/// views — the hashes below were captured from that pre-refactor struct, so
/// keeping this order is what makes them comparable across the refactor.
std::uint64_t image_hash(const spmv::CompiledPlan& c) {
  std::vector<std::uint64_t> w;
  push(w, c.numProcs);
  push(w, c.out.size);        // numRows
  push(w, c.in[0].size);      // numCols
  push(w, c.out.off);         // rowOff
  push(w, c.in[0].off);       // xOff
  push(w, c.in[0].ownOff);    // ownXOff
  push(w, c.out.ownOff);      // ownYOff
  push(w, c.in[0].sendOff);   // xSendOff
  push(w, c.in[0].sendMsgOff);  // xSendMsgOff
  push(w, c.in[0].recvOff);   // xRecvOff
  push(w, c.out.sendOff);     // ySendOff
  push(w, c.out.sendMsgOff);  // ySendMsgOff
  push(w, c.out.recvOff);     // yRecvOff
  push(w, c.groupPtr);        // rowPtr
  push(w, c.rhsSlot);         // colSlot
  push(w, c.constVals);       // vals
  push(w, c.in[0].slotGlobal);  // xColGlobal
  push(w, c.in[0].ownId);     // ownXCol
  push(w, c.in[0].ownSlot);   // ownXSlot
  push(w, c.in[0].sendId);    // xSendCol
  push(w, c.in[0].recvSlot);  // xRecvSlot
  push(w, c.in[0].recvSrc);   // xRecvSrc
  push(w, c.out.ownId);       // ownYRow
  push(w, c.out.ownSlot);     // ownYSlot
  push(w, c.out.sendSlot);    // ySendSlot
  push(w, c.out.sendId);      // ySendRow
  push(w, c.out.recvId);      // yRecvRow
  push(w, c.out.recvSrc);     // yRecvSrc
  push(w, c.reorderedProcs);
  return fnv1a(w);
}

std::uint64_t y_hash(const std::vector<double>& y) {
  std::vector<std::uint64_t> w;
  push(w, y);
  return fnv1a(w);
}

/// Signature of one pipeline run: plan content, image content with the cache
/// reorder on and off, and the executed result bits (identical at every
/// thread count by the bit-identity contract).
struct Sig {
  std::uint64_t plan = 0;
  std::uint64_t image = 0;
  std::uint64_t imagePlain = 0;  // CompileOptions::cacheReorder = false
  std::uint64_t y = 0;

  bool operator==(const Sig&) const = default;
};

// The generator instances the goldens are pinned on: a structured mesh and
// an irregular random pattern (same as test_rb_golden), plus a randomly
// shuffled mesh whose blocks the cache reorder actually adopts — so the
// RCM-folded slot tables are pinned too, not just the first-use numbering.
sparse::Csr mesh_matrix() { return sparse::stencil2d(20, 20); }
sparse::Csr irregular_matrix() { return sparse::random_square(250, 5, 13); }
sparse::Csr shuffled_matrix() {
  Rng rng(7);
  const sparse::Csr a = sparse::stencil2d(20, 20);
  return sparse::permute_symmetric(a, rng.permutation(a.num_rows()));
}

/// Deterministic x with exactly-representable values (no libm involved).
std::vector<double> probe_x(idx_t n) {
  std::vector<double> x(static_cast<std::size_t>(n));
  for (idx_t j = 0; j < n; ++j)
    x[static_cast<std::size_t>(j)] = 1.0 + 0.125 * static_cast<double>(j % 7);
  return x;
}

Sig run_case(const sparse::Csr& a, idx_t K, idx_t threads) {
  part::PartitionConfig cfg;
  cfg.seed = 42;
  cfg.numThreads = threads;
  cfg.minParallelVertices = 64;
  const model::ModelRun run = model::run_finegrain(a, K, cfg);
  const spmv::SpmvPlan plan = spmv::build_plan(a, run.decomp);

  Sig s;
  s.plan = plan_hash(plan);
  spmv::CompileOptions plain;
  plain.cacheReorder = false;
  s.imagePlain = image_hash(spmv::compile_plan(plan, plain));

  spmv::ExecSession session(plan);
  s.image = image_hash(session.compiled());
  const std::vector<double> x = probe_x(a.num_cols());
  std::vector<double> y;
  session.run_mt(x, y, threads);
  s.y = y_hash(y);

  // The serial path must produce the same bits as any MT width.
  std::vector<double> ys;
  session.run(x, ys);
  EXPECT_EQ(s.y, y_hash(ys));
  return s;
}

struct Case {
  const char* matrix;  // "mesh", "irregular"
  idx_t K;
  Sig expected;        // at every thread count (thread-count independence)
};

// Golden signatures captured from the pre-refactor (PR 7 state) pipeline;
// the workload-agnostic execution core must reproduce them bit-identically.
const Case kGolden[] = {
    {"mesh", 4, {0x98e3df394b1209e6ULL, 0x65fb064450f30926ULL, 0x65fb064450f30926ULL, 0x82e98026301bf84bULL}},
    {"mesh", 8, {0x2d9b4202ece5b849ULL, 0x8fb6afeb1e9df7c5ULL, 0x8fb6afeb1e9df7c5ULL, 0x82e98026301bf84bULL}},
    {"irregular", 4, {0x7ecc2d66995c8b5dULL, 0xa714a5697f7cbf29ULL, 0xa714a5697f7cbf29ULL, 0x6c7e5d43c1241a70ULL}},
    {"irregular", 8, {0x9fc857e4e0eb81dbULL, 0xb0afb93e16a9d40eULL, 0xb0afb93e16a9d40eULL, 0xb8aa7ddaba900412ULL}},
    {"shuffled", 4, {0x38743eef05b55e43ULL, 0x7e660cf498cbe57eULL, 0x7a13cab89bd57d38ULL, 0x71e5cbb50d88982eULL}},
};

Sig run_case(const Case& c, idx_t threads) {
  const std::string name = c.matrix;
  const sparse::Csr a = name == "mesh"        ? mesh_matrix()
                        : name == "irregular" ? irregular_matrix()
                                              : shuffled_matrix();
  return run_case(a, c.K, threads);
}

TEST(ExecGolden, PrintCurrentSignatures) {
  if (!env_flag("FGHP_GOLDEN_PRINT")) GTEST_SKIP() << "set FGHP_GOLDEN_PRINT=1 to print";
  for (const Case& c : kGolden) {
    const Sig s = run_case(c, 1);
    std::printf("    {\"%s\", %d, {0x%016llxULL, 0x%016llxULL, 0x%016llxULL, 0x%016llxULL}},\n",
                c.matrix, static_cast<int>(c.K),
                static_cast<unsigned long long>(s.plan),
                static_cast<unsigned long long>(s.image),
                static_cast<unsigned long long>(s.imagePlain),
                static_cast<unsigned long long>(s.y));
  }
}

class ExecGoldenSweep : public ::testing::TestWithParam<idx_t> {};

TEST_P(ExecGoldenSweep, PinnedAtEveryThreadCount) {
  const idx_t threads = GetParam();
  for (const Case& c : kGolden) {
    const Sig s = run_case(c, threads);
    EXPECT_EQ(s.plan, c.expected.plan)
        << "plan " << c.matrix << " K=" << c.K << " threads=" << threads;
    EXPECT_EQ(s.image, c.expected.image)
        << "image " << c.matrix << " K=" << c.K << " threads=" << threads;
    EXPECT_EQ(s.imagePlain, c.expected.imagePlain)
        << "imagePlain " << c.matrix << " K=" << c.K << " threads=" << threads;
    EXPECT_EQ(s.y, c.expected.y)
        << "y " << c.matrix << " K=" << c.K << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ExecGoldenSweep, ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace fghp
