// Matrix Market reader/writer tests, including symmetry expansion and
// malformed-input diagnostics.
#include <gtest/gtest.h>

#include <sstream>

#include "sparse/convert.hpp"
#include "sparse/generators.hpp"
#include "sparse/mmio.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

namespace fghp::sparse {
namespace {

Csr parse(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in);
}

TEST(Mmio, ReadsGeneralReal) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 4\n"
      "1 1 1.5\n"
      "1 3 -2\n"
      "2 2 3\n"
      "3 1 4\n");
  EXPECT_EQ(a.num_rows(), 3);
  EXPECT_EQ(a.nnz(), 4);
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 1.5);
  EXPECT_TRUE(a.has_entry(0, 2));
  EXPECT_TRUE(a.has_entry(2, 0));
}

TEST(Mmio, ExpandsSymmetricStorage) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 2\n"
      "2 1 5\n"
      "3 3 1\n");
  EXPECT_EQ(a.nnz(), 4);  // (2,1) expands to (1,2)
  EXPECT_TRUE(a.has_entry(0, 1));
  EXPECT_DOUBLE_EQ(a.row_vals(0)[1], 5.0);
}

TEST(Mmio, ExpandsSkewSymmetric) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3\n");
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], -3.0);
  EXPECT_DOUBLE_EQ(a.row_vals(1)[0], 3.0);
}

TEST(Mmio, PatternFieldGetsUnitValues) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 2\n"
      "2 1\n");
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 1.0);
}

TEST(Mmio, IntegerField) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate integer general\n"
      "1 1 1\n"
      "1 1 7\n");
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 7.0);
}

TEST(Mmio, RejectsMissingBanner) {
  EXPECT_THROW(parse("1 1 0\n"), std::runtime_error);
}

TEST(Mmio, RejectsArrayFormat) {
  EXPECT_THROW(parse("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsComplexField) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsOutOfRangeIndex) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsUpperTriangleInSymmetric) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 1\n"),
               std::runtime_error);
}

TEST(Mmio, RejectsTruncatedEntries) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n"),
               std::runtime_error);
}

TEST(Mmio, TruncatedErrorReportsShortfall) {
  try {
    parse("%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("got 1 of 3"), std::string::npos) << e.what();
  }
}

TEST(Mmio, ReadsCrlfFiles) {
  // A Windows-saved file: every line ends in \r\n, including a blank line
  // and a comment between entries.
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real general\r\n"
      "% saved on Windows\r\n"
      "2 2 2\r\n"
      "1 1 1.5\r\n"
      "\r\n"
      "% interleaved comment\r\n"
      "2 2 -4\r\n");
  EXPECT_EQ(a.num_rows(), 2);
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 1.5);
  EXPECT_DOUBLE_EQ(a.row_vals(1)[0], -4.0);
}

TEST(Mmio, CrlfRoundTrip) {
  const Csr a = random_square(30, 4, 9);
  std::ostringstream out;
  write_matrix_market(out, a);
  std::string crlf;
  for (char c : out.str()) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  EXPECT_EQ(parse(crlf), a);
}

TEST(Mmio, CrlfSymmetricStorage) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real symmetric\r\n"
      "2 2 2\r\n"
      "1 1 2\r\n"
      "2 1 5\r\n");
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_TRUE(a.has_entry(0, 1));
}

TEST(Mmio, DuplicateEntriesAccumulate) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 4\n"
      "1 1 2\n"
      "1 1 3.5\n"
      "2 3 1\n"
      "2 3 -1\n");
  EXPECT_EQ(a.nnz(), 2);  // duplicates merged, zero-sum entry kept as structural
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 5.5);
  EXPECT_DOUBLE_EQ(a.row_vals(1)[0], 0.0);
  // No duplicate column indices within a row.
  const auto cols = a.row_cols(0);
  EXPECT_EQ(cols.size(), 1u);
}

TEST(Mmio, DuplicateSymmetricEntriesAccumulateBothMirrors) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "2 1 3\n"
      "2 1 4\n");
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 7.0);  // (1,2) mirror
  EXPECT_DOUBLE_EQ(a.row_vals(1)[0], 7.0);  // (2,1)
}

TEST(Mmio, DuplicatePatternEntriesCollapseToUnit) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 3\n"
      "1 1\n"
      "1 1\n"
      "2 1\n");
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.row_vals(0)[0], 1.0);  // not 2.0
  EXPECT_DOUBLE_EQ(a.row_vals(1)[0], 1.0);
}

TEST(Mmio, TrailingBlankAndCommentLinesOk) {
  const Csr a = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1\n"
      "2 2 2\n"
      "\n"
      "   \n"
      "% trailing comment\n");
  EXPECT_EQ(a.nnz(), 2);
}

TEST(Mmio, ErrorMentionsLineNumber) {
  try {
    parse("%%MatrixMarket matrix coordinate real general\n2 2 1\nbogus\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Mmio, WriteReadRoundTrip) {
  const Csr a = random_square(40, 5, 77);
  std::ostringstream out;
  write_matrix_market(out, a);
  const Csr b = parse(out.str());
  EXPECT_EQ(a, b);
}

TEST(Mmio, RoundTripPreservesValuesExactly) {
  Coo coo(2, 2);
  coo.add(0, 0, 1.0 / 3.0);
  coo.add(1, 1, -2.718281828459045);
  const Csr a = to_csr(std::move(coo));
  std::ostringstream out;
  write_matrix_market(out, a);
  const Csr b = parse(out.str());
  EXPECT_DOUBLE_EQ(b.row_vals(0)[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(b.row_vals(1)[0], -2.718281828459045);
}

TEST(Mmio, FileRoundTrip) {
  const Csr a = random_square(25, 4, 123);
  const std::string path = ::testing::TempDir() + "/fghp_roundtrip.mtx";
  write_matrix_market_file(path, a);
  EXPECT_EQ(read_matrix_market_file(path), a);
}

TEST(Mmio, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/dir/x.mtx"), std::runtime_error);
}

// -------------------------------------------- typed errors + bad values ----

TEST(Mmio, RejectsNanValue) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n"),
               FormatError);
}

TEST(Mmio, RejectsInfValue) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 inf\n"),
               FormatError);
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 -inf\n"),
               FormatError);
}

TEST(Mmio, RejectsZeroAndNegativeIndices) {
  // Matrix Market indices are 1-based; 0 and negatives are malformed, and
  // the message must say so rather than report a generic range error.
  try {
    parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n");
    FAIL() << "expected throw";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("positive"), std::string::npos) << e.what();
  }
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 -3 1\n"),
               FormatError);
}

TEST(Mmio, RejectsNegativeSizeLine) {
  EXPECT_THROW(parse("%%MatrixMarket matrix coordinate real general\n-2 2 1\n1 1 1\n"),
               FormatError);
}

TEST(Mmio, FormatErrorCarriesContext) {
  try {
    parse("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 nan\n");
    FAIL() << "expected throw";
  } catch (const FormatError& e) {
    EXPECT_EQ(e.context().line, 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(Mmio, MissingFileThrowsIoErrorWithPath) {
  try {
    read_matrix_market_file("/nonexistent/dir/x.mtx");
    FAIL() << "expected throw";
  } catch (const IoError& e) {
    EXPECT_EQ(e.context().path, "/nonexistent/dir/x.mtx");
  }
}

TEST(Mmio, InjectedEntryFaultHitsExactEntry) {
  const std::string text =
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n1 1 1\n2 2 2\n3 3 3\n";
  fault::ScopedSpec spec("mmio.read:2");
  try {
    parse(text);
    FAIL() << "expected FaultError";
  } catch (const FaultError& e) {
    EXPECT_EQ(e.context().part, 2);  // second entry, deterministic
  }
}

TEST(Mmio, InjectedOpenFaultBeatsFileAccess) {
  fault::ScopedSpec spec("mmio.open");
  EXPECT_THROW(read_matrix_market_file("/nonexistent/dir/x.mtx"), FaultError);
}

}  // namespace
}  // namespace fghp::sparse
