// Hypergraph substrate tests: construction, builder, partition object,
// metrics (validated against brute-force recomputation), validation.
#include <gtest/gtest.h>

#include <set>

#include "hypergraph/builder.hpp"
#include "hypergraph/hypergraph.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/partition.hpp"
#include "hypergraph/validate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fghp::hg {
namespace {

/// The running example: 5 vertices, 3 nets.
Hypergraph example() {
  HypergraphBuilder b(5);
  b.add_net(std::vector<idx_t>{0, 1, 2});
  b.add_net(std::vector<idx_t>{2, 3});
  b.add_net(std::vector<idx_t>{0, 3, 4}, 2);
  return std::move(b).build();
}

/// Random hypergraph for property tests.
Hypergraph random_hg(idx_t numVerts, idx_t numNets, idx_t maxNetSize, Rng& rng) {
  HypergraphBuilder b(numVerts);
  for (idx_t n = 0; n < numNets; ++n) {
    std::set<idx_t> pins;
    const idx_t size = rng.uniform(1, maxNetSize);
    while (static_cast<idx_t>(pins.size()) < size)
      pins.insert(rng.uniform(0, numVerts - 1));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv, rng.uniform(1, 3));
  }
  for (idx_t v = 0; v < numVerts; ++v) b.set_vertex_weight(v, rng.uniform(1, 4));
  return std::move(b).build();
}

/// Brute-force lambda-1 / cut-net cutsizes for cross-checking.
weight_t brute_cutsize(const Hypergraph& h, const Partition& p, CutMetric metric) {
  weight_t total = 0;
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    std::set<idx_t> parts;
    for (idx_t v : h.pins(n)) parts.insert(p.part_of(v));
    if (parts.size() > 1) {
      total += metric == CutMetric::kCutNet
                   ? h.net_cost(n)
                   : h.net_cost(n) * (static_cast<weight_t>(parts.size()) - 1);
    }
  }
  return total;
}

// ----------------------------------------------------------- structure ----

TEST(Hypergraph, BasicAccessors) {
  const Hypergraph h = example();
  EXPECT_EQ(h.num_vertices(), 5);
  EXPECT_EQ(h.num_nets(), 3);
  EXPECT_EQ(h.num_pins(), 8);
  EXPECT_EQ(h.net_size(0), 3);
  EXPECT_EQ(h.net_size(1), 2);
  EXPECT_EQ(h.net_cost(2), 2);
  EXPECT_EQ(h.vertex_weight(0), 1);
  EXPECT_EQ(h.total_vertex_weight(), 5);
}

TEST(Hypergraph, InverseIncidence) {
  const Hypergraph h = example();
  EXPECT_EQ(h.vertex_degree(0), 2);
  EXPECT_EQ(h.vertex_degree(1), 1);
  EXPECT_EQ(h.vertex_degree(2), 2);
  std::set<idx_t> nets0(h.nets(0).begin(), h.nets(0).end());
  EXPECT_EQ(nets0, (std::set<idx_t>{0, 2}));
  std::set<idx_t> nets4(h.nets(4).begin(), h.nets(4).end());
  EXPECT_EQ(nets4, (std::set<idx_t>{2}));
}

TEST(Hypergraph, RejectsBadInputs) {
  EXPECT_THROW(Hypergraph(2, {0, 1}, {5}, {1, 1}, {1}), std::invalid_argument);  // pin range
  EXPECT_THROW(Hypergraph(2, {0, 1}, {0, 1}, {1, 1}, {1}), std::invalid_argument);  // pins size
  EXPECT_THROW(Hypergraph(2, {0, 1}, {0}, {1}, {1}), std::invalid_argument);  // weights size
  EXPECT_THROW(Hypergraph(2, {0, 1}, {0}, {1, -1}, {1}), std::invalid_argument);  // neg weight
  EXPECT_THROW(Hypergraph(2, {0, 1}, {0}, {1, 1}, {-1}), std::invalid_argument);  // neg cost
}

TEST(Hypergraph, EmptyHypergraph) {
  const Hypergraph h(0, {0}, {}, {}, {});
  EXPECT_EQ(h.num_vertices(), 0);
  EXPECT_EQ(h.num_nets(), 0);
  EXPECT_TRUE(validate(h).empty());
}

// ------------------------------------------------------------- builder ----

TEST(Builder, AddVertexAndPins) {
  HypergraphBuilder b(2);
  const idx_t v = b.add_vertex(7);
  EXPECT_EQ(v, 2);
  const idx_t n = b.add_empty_net(3);
  b.add_pin(n, 0);
  b.add_pin(n, v);
  const Hypergraph h = std::move(b).build();
  EXPECT_EQ(h.vertex_weight(2), 7);
  EXPECT_EQ(h.net_size(0), 2);
  EXPECT_EQ(h.net_cost(0), 3);
}

TEST(Builder, RejectsDuplicatePinAtBuild) {
  HypergraphBuilder b(3);
  const idx_t n = b.add_empty_net();
  b.add_pin(n, 1);
  b.add_pin(n, 1);
  EXPECT_THROW(std::move(b).build(), std::invalid_argument);
}

TEST(Builder, RejectsOutOfRange) {
  HypergraphBuilder b(2);
  EXPECT_THROW(b.add_pin(0, 0), std::invalid_argument);  // no net yet
  const idx_t n = b.add_empty_net();
  EXPECT_THROW(b.add_pin(n, 5), std::invalid_argument);
  EXPECT_THROW(b.set_vertex_weight(9, 1), std::invalid_argument);
}

TEST(Builder, BuiltHypergraphValidates) {
  Rng rng(3);
  const Hypergraph h = random_hg(40, 30, 6, rng);
  EXPECT_TRUE(validate(h).empty());
}

// ----------------------------------------------------------- partition ----

TEST(Partition, AssignAndMoveMaintainWeights) {
  const Hypergraph h = example();
  Partition p(h, 2);
  EXPECT_FALSE(p.complete());
  for (idx_t v = 0; v < 5; ++v) p.assign(h, v, v % 2);
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.part_weight(0), 3);
  EXPECT_EQ(p.part_weight(1), 2);
  p.move(h, 0, 1);
  EXPECT_EQ(p.part_weight(0), 2);
  EXPECT_EQ(p.part_weight(1), 3);
  p.move(h, 0, 1);  // no-op move to same part
  EXPECT_EQ(p.part_weight(1), 3);
}

TEST(Partition, AdoptAssignment) {
  const Hypergraph h = example();
  Partition p(h, 3, {0, 1, 2, 0, 1});
  EXPECT_TRUE(p.complete());
  EXPECT_EQ(p.part_weight(0), 2);
  EXPECT_EQ(p.part_weight(2), 1);
  EXPECT_THROW(Partition(h, 2, {0, 1, 2, 0, 1}), std::invalid_argument);  // part 2 out of range
  EXPECT_THROW(Partition(h, 2, {0, 1}), std::invalid_argument);           // wrong size
}

// -------------------------------------------------------------- metrics ----

TEST(Metrics, ConnectivityOfExample) {
  const Hypergraph h = example();
  const Partition p(h, 2, {0, 0, 1, 1, 0});
  EXPECT_EQ(net_connectivity(h, p, 0), 2);  // {0,1}
  EXPECT_EQ(net_connectivity(h, p, 1), 1);  // {1}
  EXPECT_EQ(net_connectivity(h, p, 2), 2);  // {0,1}
  EXPECT_EQ(net_connectivity_set(h, p, 2), (std::vector<idx_t>{0, 1}));
}

TEST(Metrics, CutsizeBothMetrics) {
  const Hypergraph h = example();
  const Partition p(h, 2, {0, 0, 1, 1, 0});
  // Net 0 cut (cost 1, lambda 2), net 1 uncut, net 2 cut (cost 2, lambda 2).
  EXPECT_EQ(cutsize(h, p, CutMetric::kCutNet), 3);
  EXPECT_EQ(cutsize(h, p, CutMetric::kConnectivity), 3);
  EXPECT_EQ(num_cut_nets(h, p), 2);
}

TEST(Metrics, ConnectivityExceedsCutNetForKGreaterThan2) {
  const Hypergraph h = example();
  const Partition p(h, 3, {0, 1, 2, 0, 1});
  // Net 0: parts {0,1,2} lambda 3; net 1: {2,0} lambda 2; net 2: {0,0,1} lambda 2.
  EXPECT_EQ(cutsize(h, p, CutMetric::kCutNet), 1 + 1 + 2);
  EXPECT_EQ(cutsize(h, p, CutMetric::kConnectivity), 2 + 1 + 2);
}

TEST(Metrics, CutsizeMatchesBruteForceOnRandomInstances) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const Hypergraph h = random_hg(30, 25, 8, rng);
    const idx_t K = rng.uniform(2, 6);
    std::vector<idx_t> assign(30);
    for (auto& a : assign) a = rng.uniform(0, K - 1);
    const Partition p(h, K, std::move(assign));
    EXPECT_EQ(cutsize(h, p, CutMetric::kConnectivity),
              brute_cutsize(h, p, CutMetric::kConnectivity));
    EXPECT_EQ(cutsize(h, p, CutMetric::kCutNet),
              brute_cutsize(h, p, CutMetric::kCutNet));
  }
}

TEST(Metrics, ImbalanceAndBalanceCheck) {
  const Hypergraph h = example();  // total weight 5
  const Partition p(h, 2, {0, 0, 0, 1, 1});
  // Weights 3 and 2, avg 2.5 => imbalance 0.2.
  EXPECT_NEAR(imbalance(h, p), 0.2, 1e-12);
  EXPECT_NEAR(percent_imbalance(h, p), 20.0, 1e-9);
  EXPECT_TRUE(is_balanced(h, p, 0.2));
  EXPECT_FALSE(is_balanced(h, p, 0.1));
}

TEST(Metrics, PerfectBalance) {
  const Hypergraph h = example();
  const Partition p(h, 5, {0, 1, 2, 3, 4});
  EXPECT_NEAR(imbalance(h, p), 0.0, 1e-12);
  EXPECT_TRUE(is_balanced(h, p, 0.0));
}

TEST(Metrics, CutsizeRequiresComplete) {
  const Hypergraph h = example();
  Partition p(h, 2);
  p.assign(h, 0, 0);
  EXPECT_THROW(cutsize(h, p, CutMetric::kConnectivity), std::invalid_argument);
}

TEST(Metrics, ZeroCostNetsAreFree) {
  HypergraphBuilder b(4);
  b.add_net(std::vector<idx_t>{0, 1}, 0);  // cut but free
  b.add_net(std::vector<idx_t>{2, 3}, 2);
  const Hypergraph h = std::move(b).build();
  const Partition p(h, 2, {0, 1, 0, 1});
  EXPECT_EQ(cutsize(h, p, CutMetric::kConnectivity), 2);
  EXPECT_EQ(num_cut_nets(h, p), 2);  // cut-net count ignores cost
}

TEST(Metrics, SinglePinAndEmptyNetsNeverCut) {
  std::vector<idx_t> xpins = {0, 1, 1};
  std::vector<idx_t> pins = {0};
  const Hypergraph h(2, std::move(xpins), std::move(pins), {1, 1}, {3, 3});
  const Partition p(h, 2, {0, 1});
  EXPECT_EQ(cutsize(h, p, CutMetric::kConnectivity), 0);
  EXPECT_EQ(num_cut_nets(h, p), 0);
}

TEST(Metrics, LargeCostsAccumulateInWeightT) {
  HypergraphBuilder b(2);
  b.add_net(std::vector<idx_t>{0, 1}, weight_t{1} << 40);
  const Hypergraph h = std::move(b).build();
  const Partition p(h, 2, {0, 1});
  EXPECT_EQ(cutsize(h, p, CutMetric::kConnectivity), weight_t{1} << 40);
}

// ------------------------------------------------------------- validate ----

TEST(Validate, FlagsDuplicatePins) {
  // Construct directly (builder would reject).
  const Hypergraph h(3, {0, 3}, {1, 1, 2}, {1, 1, 1}, {1});
  const auto problems = validate(h);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("duplicate"), std::string::npos);
  EXPECT_THROW(validate_or_throw(h), fghp::InvariantError);
}

TEST(Validate, AcceptsExample) {
  EXPECT_NO_THROW(validate_or_throw(example()));
}

}  // namespace
}  // namespace fghp::hg
