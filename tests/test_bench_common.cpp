// Benchmark plumbing tests: the median estimator every throughput bench
// reports, and the STREAM-triad baseline the roofline section divides by.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "bench_common.hpp"

namespace fghp::bench {
namespace {

TEST(Median, OddLengthTakesMiddleElement) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({9.0, 1.0, 5.0}), 5.0);
  EXPECT_DOUBLE_EQ(median({2.0, 2.0, 2.0, 7.0, 1.0}), 2.0);
}

TEST(Median, EvenLengthAveragesTheTwoMiddleElements) {
  EXPECT_DOUBLE_EQ(median({4.0, 1.0}), 2.5);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 10.0}), 2.5);
  // One outlier in an even sample moves the median by at most half the
  // neighbor gap — the property the benches rely on.
  EXPECT_DOUBLE_EQ(median({1.0, 1.0, 1.0, 1000.0}), 1.0);
}

TEST(Median, UnsortedInputIsSortedFirst) {
  EXPECT_DOUBLE_EQ(median({10.0, -1.0, 4.0, 3.0, 2.0}), 3.0);
}

TEST(Median, EmptySampleThrows) {
  EXPECT_THROW(median({}), std::invalid_argument);
}

TEST(StreamTriad, ReportsPositiveFiniteBandwidth) {
  // Tiny arrays: this checks plumbing (timing, byte accounting), not the
  // machine's actual bandwidth.
  const double gbps = stream_triad_gbps(1 << 16, 3);
  EXPECT_GT(gbps, 0.0);
  EXPECT_TRUE(std::isfinite(gbps));
}

}  // namespace
}  // namespace fghp::bench
