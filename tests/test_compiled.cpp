// Compiled execution image tests: plan lowering invariants, session reuse
// (bit-identity with the one-shot executors at several thread counts, with
// and without injected faults), the zero-allocation guarantee of the serial
// iteration path, and the traffic-accounting property across the whole test
// suite.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "comm/volume.hpp"
#include "models/checkerboard.hpp"
#include "models/finegrain.hpp"
#include "spmv/compiled.hpp"
#include "spmv/executor.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "sparse/generators.hpp"
#include "sparse/reorder.hpp"
#include "sparse/testsuite.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter: the session-reuse test asserts that iterations
// after the first perform zero heap allocations on the serial path. Counting
// every operator new in the binary is crude but exact — the measured window
// contains nothing but ExecSession::run.
namespace {
std::atomic<long> g_allocCount{0};
}

void* operator new(std::size_t sz) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fghp::spmv {
namespace {

std::vector<double> random_x(idx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01() * 2.0 - 1.0;
  return x;
}

model::Decomposition random_decomposition(const sparse::Csr& a, idx_t K,
                                          std::uint64_t seed) {
  Rng rng(seed);
  model::Decomposition d;
  d.numProcs = K;
  d.nnzOwner.resize(static_cast<std::size_t>(a.nnz()));
  for (auto& p : d.nnzOwner) p = rng.uniform(0, K - 1);
  d.xOwner.resize(static_cast<std::size_t>(a.num_cols()));
  d.yOwner.resize(static_cast<std::size_t>(a.num_rows()));
  for (auto& p : d.xOwner) p = rng.uniform(0, K - 1);
  for (auto& p : d.yOwner) p = rng.uniform(0, K - 1);
  return d;
}

void expect_bit_identical(const std::vector<double>& a, const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << "index " << i;
}

// ------------------------------------------------------------- lowering ----

TEST(CompilePlan, ImageCoversPlanExactly) {
  const sparse::Csr a = sparse::random_square(120, 6, 5);
  for (idx_t K : {1, 3, 8}) {
  for (bool reorder : {true, false}) {
    const auto d = random_decomposition(a, K, 17 + static_cast<std::uint64_t>(K));
    const SpmvPlan plan = build_plan(a, d);
    CompileOptions copts;
    copts.cacheReorder = reorder;
    const CompiledPlan c = compile_plan(plan, copts);
    EXPECT_EQ(c.cacheReordered, reorder);
    if (!reorder) {
      EXPECT_EQ(c.reorderedProcs, 0);
    }

    // Send-buffer offsets cover exactly the plan's traffic.
    EXPECT_EQ(c.total_words(), plan.total_words());
    EXPECT_EQ(c.total_messages(), plan.total_messages());
    EXPECT_EQ(static_cast<idx_t>(c.in[0].sendId.size()), c.in[0].sendOff.back());
    EXPECT_EQ(static_cast<idx_t>(c.out.sendSlot.size()), c.out.sendOff.back());
    // Every send word is received exactly once.
    EXPECT_EQ(c.in[0].recvOff.back(), c.in[0].sendOff.back());
    EXPECT_EQ(c.out.recvOff.back(), c.out.sendOff.back());
    // The task CSR partitions the matrix's nonzeros.
    EXPECT_EQ(c.num_tasks(), a.nnz());
    EXPECT_EQ(c.groupPtr.size(), static_cast<std::size_t>(c.out.off.back()) + 1);
    // Local rhs (x) slots stay inside their processor's range.
    for (idx_t p = 0; p < K; ++p) {
      for (idx_t e = c.groupPtr[static_cast<std::size_t>(c.out.off[static_cast<std::size_t>(p)])];
           e < c.groupPtr[static_cast<std::size_t>(c.out.off[static_cast<std::size_t>(p) + 1])];
           ++e) {
        EXPECT_GE(c.rhsSlot[static_cast<std::size_t>(e)], c.in[0].off[static_cast<std::size_t>(p)]);
        EXPECT_LT(c.rhsSlot[static_cast<std::size_t>(e)],
                  c.in[0].off[static_cast<std::size_t>(p) + 1]);
      }
    }
  }
  }
}

TEST(CompilePlan, RejectsFoldOfUncomputedRow) {
  const sparse::Csr a = sparse::random_square(40, 4, 6);
  const auto d = random_decomposition(a, 3, 7);
  SpmvPlan plan = build_plan(a, d);
  // Corrupt: make some processor's fold send reference a row it never owns a
  // nonzero of. Find a proc with a ySend and splice in an impossible row.
  for (auto& pp : plan.procs) {
    if (pp.ySends.empty() || pp.rows.empty()) continue;
    idx_t bogus = kInvalidIdx;
    std::vector<bool> has(static_cast<std::size_t>(a.num_rows()), false);
    for (idx_t i : pp.rows) has[static_cast<std::size_t>(i)] = true;
    for (idx_t i = 0; i < a.num_rows(); ++i)
      if (!has[static_cast<std::size_t>(i)]) { bogus = i; break; }
    if (bogus == kInvalidIdx) continue;
    pp.ySends.front().ids.push_back(bogus);
    EXPECT_THROW(compile_plan(plan), InvariantError);
    return;
  }
  GTEST_SKIP() << "no processor suitable for corruption";
}

// -------------------------------------------------------- session reuse ----

TEST(ExecSessionReuse, FiveIterationsBitIdenticalToOneShots) {
  const sparse::Csr a = sparse::random_square(150, 6, 41);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  const SpmvPlan plan = build_plan(a, run.decomp);

  ExecSession session(plan);
  std::vector<double> y;
  for (int iter = 0; iter < 5; ++iter) {
    const auto x = random_x(a.num_cols(), 100 + static_cast<std::uint64_t>(iter));
    ExecStats sessionStats, oneShotStats;

    session.run(x, y, &sessionStats);
    expect_bit_identical(y, execute(plan, x, &oneShotStats));
    EXPECT_EQ(sessionStats.wordsSent, oneShotStats.wordsSent);
    EXPECT_EQ(sessionStats.messagesSent, oneShotStats.messagesSent);

    for (idx_t threads : {1, 2, 8}) {
      session.run_mt(x, y, threads, &sessionStats);
      expect_bit_identical(y, execute_mt(plan, x, threads, &oneShotStats));
      EXPECT_EQ(sessionStats.wordsSent, oneShotStats.wordsSent);
      EXPECT_EQ(sessionStats.messagesSent, oneShotStats.messagesSent);
    }
  }
}

TEST(ExecSessionReuse, BitIdenticalUnderRetriedFault) {
  const sparse::Csr a = sparse::random_square(130, 5, 42);
  const auto d = random_decomposition(a, 6, 43);
  const SpmvPlan plan = build_plan(a, d);
  const auto x = random_x(a.num_cols(), 44);
  const auto clean = execute(plan, x);

  // Ordinal 2 = processor 1: its expand task fails once, the retry succeeds.
  fault::ScopedSpec spec("exec.expand:2");
  ExecSession session(plan);
  std::vector<double> y;
  for (idx_t threads : {1, 2, 8}) {
    for (int iter = 0; iter < 5; ++iter) {
      ExecStats stats;
      session.run_mt(x, y, threads, &stats);
      expect_bit_identical(y, clean);
      EXPECT_EQ(stats.taskRetries, 1);
      EXPECT_FALSE(stats.serialFallback);
    }
  }
  drain_warnings();
}

TEST(ExecSessionReuse, SerialFallbackBitIdentical) {
  const sparse::Csr a = sparse::random_square(130, 5, 45);
  const auto d = random_decomposition(a, 6, 46);
  const SpmvPlan plan = build_plan(a, d);
  const auto x = random_x(a.num_cols(), 47);
  const auto clean = execute(plan, x);

  // Processor 0's fold task fails both attempts: the run degrades to the
  // serial path, which must still produce the clean answer and totals.
  fault::ScopedSpec spec("exec.fold:1,exec.retry:1");
  ExecSession session(plan);
  std::vector<double> y;
  for (idx_t threads : {1, 2, 8}) {
    ExecStats stats;
    session.run_mt(x, y, threads, &stats);
    expect_bit_identical(y, clean);
    EXPECT_TRUE(stats.serialFallback);
    EXPECT_EQ(stats.taskRetries, 1);
    EXPECT_EQ(stats.wordsSent, plan.total_words());
    EXPECT_EQ(stats.messagesSent, plan.total_messages());

    // A clean run right after the fallback reuses the same scratch.
    {
      fault::ScopedSpec disarm("");
      session.run_mt(x, y, threads, &stats);
      expect_bit_identical(y, clean);
      EXPECT_FALSE(stats.serialFallback);
    }
  }
  drain_warnings();
}

TEST(ExecSessionReuse, SerialIterationsAllocateNothingAfterTheFirst) {
  const sparse::Csr a = sparse::random_square(200, 6, 48);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  ExecSession session(build_plan(a, run.decomp));
  const auto x = random_x(a.num_cols(), 49);

  std::vector<double> y;
  ExecStats stats;
  session.run(x, y, &stats);  // first call sizes y

  long deltas[4];
  for (int iter = 0; iter < 4; ++iter) {
    const long before = g_allocCount.load(std::memory_order_relaxed);
    session.run(x, y, &stats);
    deltas[iter] = g_allocCount.load(std::memory_order_relaxed) - before;
  }
  for (int iter = 0; iter < 4; ++iter)
    EXPECT_EQ(deltas[iter], 0) << "iteration " << iter + 2 << " allocated";
}

// ------------------------------------------- cache reorder bit-identity ----

TEST(CacheReorder, BitIdenticalToUnreorderedImageAcrossSuite) {
  // The second-level reorder must never change a single output bit: on every
  // suite matrix (strictly validated plan), the reordered and unreordered
  // images agree exactly on the serial path and on run_mt at 1/2/8 threads.
  for (const std::string& name : sparse::suite_names()) {
    const sparse::Csr a = sparse::make_matrix(name, 1, 0.1);
    const model::Decomposition d = model::checkerboard_decompose_k(a, 8);
    const SpmvPlan plan = build_plan(a, d);
    validate_plan_or_throw(plan);
    const auto x = random_x(a.num_cols(), 60);

    CompileOptions noReorder;
    noReorder.cacheReorder = false;
    ExecSession reordered(plan);
    ExecSession baseline(plan, noReorder);
    std::vector<double> y, yBase;
    baseline.run(x, yBase);
    expect_bit_identical(yBase, execute(plan, x));

    reordered.run(x, y);
    expect_bit_identical(y, yBase);
    for (idx_t threads : {1, 2, 8}) {
      reordered.run_mt(x, y, threads);
      expect_bit_identical(y, yBase);
    }
  }
}

TEST(CacheReorder, BitIdenticalUnderFaultRecovery) {
  // Fault recovery must not interact with the permuted slot numbering: a
  // retried expand task and a fold-triggered serial fallback both reproduce
  // the clean answer on the reordered image.
  const sparse::Csr a = sparse::make_matrix("sherman3", 1, 0.1);
  const auto d = model::checkerboard_decompose_k(a, 8);
  const SpmvPlan plan = build_plan(a, d);
  validate_plan_or_throw(plan);
  const auto x = random_x(a.num_cols(), 61);
  const auto clean = execute(plan, x);

  ExecSession session(plan);
  ASSERT_TRUE(session.compiled().cacheReordered);
  std::vector<double> y;
  {
    fault::ScopedSpec spec("exec.expand:2");  // proc 1 fails once, retried
    for (idx_t threads : {1, 2, 8}) {
      ExecStats stats;
      session.run_mt(x, y, threads, &stats);
      expect_bit_identical(y, clean);
      EXPECT_EQ(stats.taskRetries, 1);
      EXPECT_FALSE(stats.serialFallback);
    }
  }
  {
    fault::ScopedSpec spec("exec.fold:1,exec.retry:1");  // proc 0: fallback
    for (idx_t threads : {1, 2, 8}) {
      ExecStats stats;
      session.run_mt(x, y, threads, &stats);
      expect_bit_identical(y, clean);
      EXPECT_TRUE(stats.serialFallback);
    }
  }
  drain_warnings();
}

TEST(CacheReorder, AdoptionIsScoreGuarded) {
  // A scrambled mesh has everything to gain: the sweep must adopt RCM. A
  // banded matrix in its natural order has nothing to gain: the first-use
  // numbering already walks the band, so the guard must keep it.
  Rng rng(62);
  const sparse::Csr mesh = sparse::permute_symmetric(
      sparse::stencil2d(30, 30), rng.permutation(900));
  const SpmvPlan shuffledPlan =
      build_plan(mesh, model::checkerboard_decompose_k(mesh, 1));
  EXPECT_GE(compile_plan(shuffledPlan).reorderedProcs, 1);

  const sparse::Csr band = sparse::banded(400, 3);
  const SpmvPlan bandPlan =
      build_plan(band, model::checkerboard_decompose_k(band, 1));
  EXPECT_EQ(compile_plan(bandPlan).reorderedProcs, 0);
}

// ------------------------------------------------------- scratch policy ----

TEST(ExecSessionScratch, MoveAssignAcrossDifferentlySizedImages) {
  // A session reused for a different (smaller or larger) image must behave
  // exactly like a fresh one: construction assigns (not resizes) the scratch,
  // so no stale tail survives the swap in either direction.
  const sparse::Csr big = sparse::random_square(300, 7, 70);
  const sparse::Csr small = sparse::random_square(40, 3, 71);
  const SpmvPlan bigPlan =
      build_plan(big, model::checkerboard_decompose_k(big, 8));
  const SpmvPlan smallPlan =
      build_plan(small, model::checkerboard_decompose_k(small, 4));
  const auto xBig = random_x(big.num_cols(), 72);
  const auto xSmall = random_x(small.num_cols(), 73);

  ExecSession session(bigPlan);
  std::vector<double> y;
  session.run(xBig, y);
  session.run_mt(xBig, y, 2);  // dirty the MT mailboxes too

  session = ExecSession(smallPlan);
  session.run(xSmall, y);
  expect_bit_identical(y, execute(smallPlan, xSmall));
  session.run_mt(xSmall, y, 2);
  expect_bit_identical(y, execute(smallPlan, xSmall));

  session = ExecSession(bigPlan);  // and back up in size
  session.run_mt(xBig, y, 2);
  expect_bit_identical(y, execute(bigPlan, xBig));
}

TEST(ExecSessionScratch, InterleavedSerialAndMtRunsStayIdentical) {
  // run() and run_mt() share xLoc_/partial_ but only run_mt touches the
  // mailboxes; interleaving them in any order must never leak state.
  const sparse::Csr a = sparse::random_square(150, 6, 74);
  const auto d = random_decomposition(a, 6, 75);
  const SpmvPlan plan = build_plan(a, d);
  ExecSession session(plan);
  std::vector<double> y;
  for (int iter = 0; iter < 3; ++iter) {
    const auto x = random_x(a.num_cols(), 80 + static_cast<std::uint64_t>(iter));
    const auto clean = execute(plan, x);
    session.run_mt(x, y, 4);
    expect_bit_identical(y, clean);
    session.run(x, y);
    expect_bit_identical(y, clean);
    session.run_mt(x, y, 1);
    expect_bit_identical(y, clean);
  }
}

TEST(ExecSessionScratch, MtRequestOfOneThreadRunsInlineWithoutAllocation) {
  // numThreads = 1 must resolve through the pool to the inline-serial path:
  // no TaskGroup, no task closures — zero allocations once y is sized.
  const sparse::Csr a = sparse::random_square(200, 6, 76);
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(a, 8, cfg);
  ExecSession session(build_plan(a, run.decomp));
  const auto x = random_x(a.num_cols(), 77);

  std::vector<double> y;
  session.run_mt(x, y, 1);  // first call sizes y
  for (int iter = 0; iter < 4; ++iter) {
    const long before = g_allocCount.load(std::memory_order_relaxed);
    session.run_mt(x, y, 1);
    const long delta = g_allocCount.load(std::memory_order_relaxed) - before;
    EXPECT_EQ(delta, 0) << "iteration " << iter + 2 << " allocated";
  }
}

// ----------------------------------------------- traffic accounting ----

TEST(ExecStatsProperty, BothExecutorsMatchAnalyzerOnEverySuiteMatrix) {
  // On every matrix of the paper's test suite (reduced scale), the counted
  // traffic of the serial and threaded executors must equal both the
  // communication analyzer's totals and the plan's own accounting.
  for (const std::string& name : sparse::suite_names()) {
    const sparse::Csr a = sparse::make_matrix(name, 1, 0.1);
    const model::Decomposition d = model::checkerboard_decompose_k(a, 8);
    const SpmvPlan plan = build_plan(a, d);
    const comm::CommStats cs = comm::analyze(a, d);
    ASSERT_EQ(plan.total_words(), cs.totalWords) << name;
    ASSERT_EQ(plan.total_messages(), cs.expandMessages + cs.foldMessages) << name;

    const auto x = random_x(a.num_cols(), 50);
    ExecStats serialStats, mtStats;
    const auto ySerial = execute(plan, x, &serialStats);
    const auto yMt = execute_mt(plan, x, 4, &mtStats);
    EXPECT_EQ(serialStats.wordsSent, cs.totalWords) << name;
    EXPECT_EQ(serialStats.messagesSent, cs.expandMessages + cs.foldMessages) << name;
    EXPECT_EQ(mtStats.wordsSent, cs.totalWords) << name;
    EXPECT_EQ(mtStats.messagesSent, cs.expandMessages + cs.foldMessages) << name;
    expect_bit_identical(ySerial, yMt);

    // And the executors must actually multiply correctly.
    const auto yRef = multiply(a, x);
    ASSERT_EQ(ySerial.size(), yRef.size()) << name;
    for (std::size_t i = 0; i < yRef.size(); ++i)
      EXPECT_NEAR(ySerial[i], yRef[i], 1e-9 * (1.0 + std::abs(yRef[i]))) << name;
  }
}

}  // namespace
}  // namespace fghp::spmv
