// Cooperative cancellation, deadlines, the graceful-degradation ladder, and
// the thread-pool watchdog / shutdown hardening (DESIGN.md §13).
//
// Determinism strategy: wall-clock deadlines are only asserted at their
// endpoints — an inactive or generous deadline must change nothing, and an
// already-expired deadline (timeout 0) must demote every recursive-bisection
// node to the greedy split. Anything in between is asserted as a range plus
// validity, never as an exact value. Exact mid-run cancellation is exercised
// through the deterministic fault sites instead of the clock.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "graph/gmetrics.hpp"
#include "graph/gvalidate.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/validate.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "partition/gp/gpartitioner.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/generators.hpp"
#include "spmv/compiled.hpp"
#include "spmv/plan.hpp"
#include "spmv/reference.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fghp {
namespace {

// ------------------------------------------------------ token semantics ----

TEST(Deadline, DefaultHasNone) {
  const cancel::Deadline d;
  EXPECT_FALSE(d.has_deadline());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 1'000'000L);  // "huge" sentinel, comparisons read naturally
}

TEST(Deadline, ZeroIsAlreadyExpired) {
  const cancel::Deadline d = cancel::Deadline::after_ms(0);
  EXPECT_TRUE(d.has_deadline());
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0L);
}

TEST(Deadline, NegativeMeansNoDeadline) {
  const cancel::Deadline d = cancel::Deadline::after_ms(-1);
  EXPECT_FALSE(d.has_deadline());
}

TEST(CancelToken, DefaultIsInactive) {
  const cancel::CancelToken t;
  EXPECT_FALSE(t.active());
  EXPECT_FALSE(t.cancelled());
  EXPECT_FALSE(t.has_deadline());
  EXPECT_EQ(cancel::poll(t), cancel::Status::kRun);
}

TEST(CancelToken, ManualCancelObservedThroughCopies) {
  const cancel::CancelToken t = cancel::CancelToken::manual();
  const cancel::CancelToken copy = t;  // copies share the state
  EXPECT_EQ(cancel::poll(copy), cancel::Status::kRun);
  t.cancel();
  EXPECT_TRUE(copy.cancelled());
  EXPECT_EQ(cancel::poll(copy), cancel::Status::kCancelled);
}

TEST(CancelToken, DeadlineTokenExpires) {
  const cancel::CancelToken t = cancel::CancelToken::with_deadline_ms(0);
  EXPECT_TRUE(t.active());
  EXPECT_TRUE(t.has_deadline());
  EXPECT_EQ(cancel::poll(t), cancel::Status::kDeadlineExpired);
  EXPECT_EQ(t.remaining_ms(), 0L);
}

TEST(CancelToken, NegativeTimeoutYieldsInactiveToken) {
  // CLI plumbing passes --timeout-ms through unconditionally; -1 = no flag.
  const cancel::CancelToken t = cancel::CancelToken::with_deadline_ms(-1);
  EXPECT_FALSE(t.active());
}

TEST(CancelToken, CancelBeatsExpiredDeadline) {
  const cancel::CancelToken t = cancel::CancelToken::with_deadline_ms(0);
  t.cancel();
  EXPECT_EQ(cancel::poll(t), cancel::Status::kCancelled);
}

// -------------------------------------------------- check_point contract ----

TEST(CheckPoint, InactiveTokenRuns) {
  EXPECT_EQ(cancel::check_point({}, "phase"), cancel::Status::kRun);
}

TEST(CheckPoint, CancelThrowsTypedErrorWithContext) {
  const cancel::CancelToken t = cancel::CancelToken::manual();
  t.cancel();
  const auto before = metrics::counter("cancel.cancelled").value();
  try {
    cancel::check_point(t, "rb.node", nullptr, 5);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    EXPECT_EQ(e.context().phase, "rb.node");
    EXPECT_EQ(e.context().part, 5);
  }
  EXPECT_GT(metrics::counter("cancel.cancelled").value(), before);
}

TEST(CheckPoint, ExpiredDeadlineThrowsByDefault) {
  const cancel::CancelToken t = cancel::CancelToken::with_deadline_ms(0);
  const auto before = metrics::counter("cancel.deadline_expired").value();
  try {
    cancel::check_point(t, "hg.partition");
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadline);
    EXPECT_EQ(e.context().phase, "hg.partition");
  }
  EXPECT_GT(metrics::counter("cancel.deadline_expired").value(), before);
}

TEST(CheckPoint, DegradingCallersGetAStatusInsteadOfAThrow) {
  const cancel::CancelToken t = cancel::CancelToken::with_deadline_ms(0);
  EXPECT_EQ(cancel::check_point(t, "rb.node", nullptr, 1, /*deadlineThrows=*/false),
            cancel::Status::kDeadlineExpired);
}

TEST(CheckPoint, FaultSiteSimulatesCancellationWithoutAToken) {
  fault::ScopedSpec spec("cancel.rb.node:2");
  // Ordinal 1 does not match the armed site: the check-point runs.
  EXPECT_EQ(cancel::check_point({}, "rb.node", "cancel.rb.node", 1),
            cancel::Status::kRun);
  try {
    cancel::check_point({}, "rb.node", "cancel.rb.node", 2);
    FAIL() << "expected injected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.context().part, 2);
  }
}

// ----------------------------------------------- the degradation ladder ----

part::PartitionConfig ladder_config(long timeoutMs, idx_t threads = 1) {
  part::PartitionConfig cfg;
  cfg.seed = 42;
  cfg.numThreads = threads;
  cfg.minParallelVertices = 32;
  cfg.validateLevel = part::ValidateLevel::kStrict;  // validate between phases
  cfg.cancel = cancel::CancelToken::with_deadline_ms(timeoutMs);
  return cfg;
}

TEST(Degradation, ExpiredDeadlineStillReturnsValidPartition) {
  const sparse::Csr a = sparse::random_square(150, 4, 17);
  const model::FineGrainModel m = model::build_finegrain(a);
  constexpr idx_t K = 8;
  // Timeout 0: the budget is gone before the first node, so every one of the
  // K-1 bisection nodes demotes straight to the deterministic greedy split.
  const part::HgResult r = part::partition_hypergraph(m.h, K, ladder_config(0));
  drain_warnings();
  EXPECT_EQ(r.numDegraded, K - 1);
  EXPECT_TRUE(hg::validate_partition(m.h, r.partition).empty());
  EXPECT_TRUE(hg::is_balanced(m.h, r.partition, 0.1));
}

TEST(Degradation, FullyDegradedRunIdenticalAcrossThreadCounts) {
  const sparse::Csr a = sparse::random_square(150, 4, 17);
  const model::FineGrainModel m = model::build_finegrain(a);
  const part::HgResult r1 = part::partition_hypergraph(m.h, 8, ladder_config(0, 1));
  const part::HgResult r2 = part::partition_hypergraph(m.h, 8, ladder_config(0, 2));
  const part::HgResult r8 = part::partition_hypergraph(m.h, 8, ladder_config(0, 8));
  drain_warnings();
  EXPECT_EQ(r1.partition.assignment(), r2.partition.assignment());
  EXPECT_EQ(r1.partition.assignment(), r8.partition.assignment());
  EXPECT_EQ(r1.numDegraded, r8.numDegraded);
}

TEST(Degradation, GraphEngineLadderMirrorsHypergraph) {
  const sparse::Csr a = sparse::random_square(150, 4, 17);
  const gp::Graph g = model::build_standard_graph(a);
  constexpr idx_t K = 8;
  const part::GpResult r = part::partition_graph(g, K, ladder_config(0));
  drain_warnings();
  EXPECT_EQ(r.numDegraded, K - 1);
  EXPECT_TRUE(gp::validate_partition(g, r.partition).empty());
  EXPECT_TRUE(gp::is_balanced(g, r.partition, 0.1));
}

TEST(Degradation, DegradedCountMonotoneAcrossBudgetEndpoints) {
  const sparse::Csr a = sparse::random_square(150, 4, 17);
  const model::FineGrainModel m = model::build_finegrain(a);
  constexpr idx_t K = 8;
  const part::HgResult none = part::partition_hypergraph(m.h, K, ladder_config(-1));
  const part::HgResult ample =
      part::partition_hypergraph(m.h, K, ladder_config(3'600'000));
  const part::HgResult tight = part::partition_hypergraph(m.h, K, ladder_config(1));
  const part::HgResult gone = part::partition_hypergraph(m.h, K, ladder_config(0));
  drain_warnings();
  EXPECT_EQ(none.numDegraded, 0);
  EXPECT_EQ(ample.numDegraded, 0);
  EXPECT_EQ(gone.numDegraded, K - 1);
  // A 1 ms budget lands somewhere on the ladder depending on the machine;
  // only the bounds and the validity of the result are deterministic.
  EXPECT_GE(tight.numDegraded, 0);
  EXPECT_LE(tight.numDegraded, K - 1);
  EXPECT_TRUE(hg::validate_partition(m.h, tight.partition).empty());
  // The generous deadline must not change a single decision (bit-identity
  // with the un-deadlined run).
  EXPECT_EQ(ample.partition.assignment(), none.partition.assignment());
}

TEST(Degradation, NoDegradeTurnsExpiryIntoTypedError) {
  const sparse::Csr a = sparse::random_square(100, 4, 23);
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg = ladder_config(0);
  cfg.degradeOnDeadline = false;
  try {
    part::partition_hypergraph(m.h, 8, cfg);
    FAIL() << "expected DeadlineExceededError";
  } catch (const DeadlineExceededError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadline);
  }
  drain_warnings();
}

TEST(Degradation, ManualCancelAlwaysThrowsEvenWithLadderOn) {
  const sparse::Csr a = sparse::random_square(100, 4, 23);
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg = ladder_config(-1);
  cfg.cancel = cancel::CancelToken::manual();
  cfg.cancel.cancel();
  EXPECT_THROW(part::partition_hypergraph(m.h, 8, cfg), CancelledError);
  drain_warnings();
}

TEST(Degradation, CountPropagatesThroughTheModelRunners) {
  const sparse::Csr a = sparse::random_square(120, 4, 31);
  part::PartitionConfig cfg;
  cfg.seed = 7;
  cfg.numThreads = 1;
  cfg.cancel = cancel::CancelToken::with_deadline_ms(0);
  const model::ModelRun run = model::run_finegrain(a, 4, cfg);
  drain_warnings();
  EXPECT_EQ(run.numDegraded, 3);  // K-1 nodes, surfaced on the facade
}

// ------------------------------------------------------- the SpMV layer ----

struct SessionFixture {
  sparse::Csr a;
  spmv::SpmvPlan plan;
  std::vector<double> x;

  SessionFixture() {
    a = sparse::random_square(60, 4, 5);
    part::PartitionConfig cfg;
    cfg.seed = 5;
    const model::Decomposition d = model::run_finegrain(a, 4, cfg).decomp;
    plan = spmv::build_plan(a, d);
    Rng rng(5);
    x.resize(static_cast<std::size_t>(a.num_cols()));
    for (auto& v : x) v = rng.uniform01();
  }
};

TEST(ExecCancel, BuildAndCompileCheckTheToken) {
  const SessionFixture f;
  part::PartitionConfig cfg;
  cfg.seed = 5;
  const model::Decomposition d = model::run_finegrain(f.a, 4, cfg).decomp;
  cancel::CancelToken cancelled = cancel::CancelToken::manual();
  cancelled.cancel();
  EXPECT_THROW(spmv::build_plan(f.a, d, cancelled), CancelledError);
  spmv::CompileOptions copts;
  copts.cancel = cancel::CancelToken::with_deadline_ms(0);
  EXPECT_THROW(spmv::compile_plan(f.plan, copts), DeadlineExceededError);
}

TEST(ExecCancel, CancelledTokenStopsTheNextIteration) {
  const SessionFixture f;
  spmv::ExecSession session(f.plan);
  const cancel::CancelToken token = cancel::CancelToken::manual();
  session.set_cancel(token);
  std::vector<double> y;
  session.run(f.x, y);  // clean iteration first
  EXPECT_EQ(session.iterations_started(), 1);
  token.cancel();
  try {
    session.run(f.x, y);
    FAIL() << "expected CancelledError";
  } catch (const CancelledError& e) {
    EXPECT_EQ(e.context().phase, "exec.iter");
  }
  EXPECT_THROW(session.run_mt(f.x, y, 2), CancelledError);
}

TEST(ExecCancel, ExpiredDeadlineIsTypedOnBothPaths) {
  const SessionFixture f;
  spmv::ExecSession session(f.plan);
  session.set_cancel(cancel::CancelToken::with_deadline_ms(0));
  std::vector<double> y;
  EXPECT_THROW(session.run(f.x, y), DeadlineExceededError);
  EXPECT_THROW(session.run_mt(f.x, y, 2), DeadlineExceededError);
}

TEST(ExecCancel, SessionStaysUsableAfterACancelledIteration) {
  const SessionFixture f;
  spmv::ExecSession session(f.plan);
  std::vector<double> y;
  {
    fault::ScopedSpec spec("cancel.exec.iter:1");
    EXPECT_THROW(session.run(f.x, y), CancelledError);
  }
  session.run(f.x, y);  // iteration 2: site disarmed, scratch fully re-assigned
  const auto yRef = spmv::multiply(f.a, f.x);
  ASSERT_EQ(y.size(), yRef.size());
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_NEAR(y[i], yRef[i], 1e-10);
}

TEST(ExecCancel, InjectedIterationOrdinalIsExact) {
  const SessionFixture f;
  spmv::ExecSession session(f.plan);
  std::vector<double> y;
  fault::ScopedSpec spec("cancel.exec.iter:3");
  session.run(f.x, y);
  session.run_mt(f.x, y, 2);  // run and run_mt share the iteration counter
  EXPECT_THROW(session.run(f.x, y), CancelledError);
}

// ------------------------------------------ watchdog + shutdown hardening ----

TEST(Watchdog, SimulatedStallReportsOnce) {
  ThreadPool pool(2);
  const auto before = metrics::counter("watchdog.stalls").value();
  fault::ScopedSpec spec("watchdog.stall:1");
  EXPECT_EQ(pool.watchdog_scan(), 1);  // scan 1 matches the armed ordinal
  EXPECT_EQ(pool.watchdog_scan(), 0);  // scan 2 does not
  EXPECT_EQ(metrics::counter("watchdog.stalls").value(), before + 1);
}

TEST(Watchdog, RealStallDetectedAndReportedOncePerTask) {
  ThreadPool pool(2);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  TaskGroup group(pool);
  group.run([&] {
    started.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  while (!started.load()) std::this_thread::yield();
  const auto before = metrics::counter("watchdog.stalls").value();
  pool.set_watchdog_ms(5);  // arms the monitor thread as well
  // The task is now pinned well past the threshold; poll until a scan (ours
  // or the monitor's) reports it. Bounded: fail after ~2 s instead of hanging.
  bool reported = false;
  for (int i = 0; i < 400 && !reported; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pool.watchdog_scan();
    reported = metrics::counter("watchdog.stalls").value() > before;
  }
  EXPECT_TRUE(reported) << "stalled task never reported";
  // The same stuck task must not be re-reported by later scans.
  const auto afterFirst = metrics::counter("watchdog.stalls").value();
  pool.watchdog_scan();
  EXPECT_EQ(metrics::counter("watchdog.stalls").value(), afterFirst);
  release.store(true);
  group.wait();
}

TEST(ThreadPoolShutdown, EnqueueAfterShutdownIsTypedAndDoesNotHang) {
  ThreadPool pool(2);
  pool.shutdown();
  TaskGroup group(pool);
  EXPECT_THROW(group.run([] {}), InvariantError);
  group.wait();  // the failed fork was rolled back; nothing pending
  EXPECT_THROW(pool.grow_to(4), InvariantError);
  pool.shutdown();  // idempotent
}

TEST(ThreadPoolShutdown, WatchdogJoinsCleanly) {
  // Construction + armed watchdog + immediate destruction must not race
  // (check.sh runs this file under TSan).
  for (int i = 0; i < 3; ++i) {
    ThreadPool pool(2);
    pool.set_watchdog_ms(1);
    std::atomic<int> ran{0};
    parallel_for(pool, 16, [&](long) { ran += 1; });
    EXPECT_EQ(ran.load(), 16);
  }
}

}  // namespace
}  // namespace fghp
