// The fast-path fine-grain partitioners (DESIGN.md §15): geometric
// recursive splits and one-pass streaming. Covers the determinism contract
// (bit-identical at any thread count), the telescoped-cut equivalence
// against the real hypergraph's lambda-1, balance feasibility at odd K,
// the fault-injection recovery ladder at the new geo.* / stream.* sites,
// deadline degradation, manual cancellation honored mid-split, and the
// streaming summaries' O(K) memory bound.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "hypergraph/metrics.hpp"
#include "models/finegrain.hpp"
#include "partition/geo/geometric.hpp"
#include "partition/geo/points.hpp"
#include "partition/geo/split.hpp"
#include "partition/geo/streaming.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/testsuite.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace fghp {
namespace {

using part::geo::GeoPoints;
using part::geo::GeoResult;
using part::geo::StreamResult;

part::PartitionConfig config_with_threads(idx_t threads) {
  part::PartitionConfig cfg;
  cfg.seed = 7;
  cfg.numThreads = threads;
  cfg.minParallelVertices = 32;  // fork aggressively so small instances cover the pool
  cfg.validateLevel = part::ValidateLevel::kStrict;
  return cfg;
}

class FastPartTest : public ::testing::Test {
 protected:
  /// A stencil matrix: spatially coherent, no heavy lines (no scatter peel).
  static const model::FineGrainPoints& stencil() {
    static const model::FineGrainPoints m =
        model::build_finegrain_points(sparse::make_matrix("sherman3", 1, 0.3));
    return m;
  }
  /// A hub-structured matrix (scaled finan512): exercises the scatter peel.
  static const model::FineGrainPoints& hubs() {
    static const model::FineGrainPoints m =
        model::build_finegrain_points(sparse::make_matrix("finan512", 1, 0.05));
    return m;
  }
  static const hg::Hypergraph& stencil_hypergraph() {
    static const model::FineGrainModel m =
        model::build_finegrain(sparse::make_matrix("sherman3", 1, 0.3));
    return m.h;
  }
  static const hg::Hypergraph& hubs_hypergraph() {
    static const model::FineGrainModel m =
        model::build_finegrain(sparse::make_matrix("finan512", 1, 0.05));
    return m.h;
  }
};

// ------------------------------------------------------- determinism ----

TEST_F(FastPartTest, GeometricIdenticalAcrossThreadCounts) {
  for (const model::FineGrainPoints* m : {&stencil(), &hubs()}) {
    std::vector<idx_t> reference;
    for (idx_t threads : {1, 2, 8}) {
      const GeoResult r =
          part::geo::partition_points_geometric(m->pts, 8, config_with_threads(threads));
      if (reference.empty()) reference = r.partition.assignment();
      EXPECT_EQ(r.partition.assignment(), reference) << "threads=" << threads;
    }
  }
}

TEST_F(FastPartTest, StreamingIdenticalAcrossThreadCounts) {
  // Streaming is single-threaded by design; numThreads must not leak into
  // the result (the contract is the same as geometric's).
  std::vector<idx_t> reference;
  for (idx_t threads : {1, 2, 8}) {
    const StreamResult r =
        part::geo::partition_points_streaming(stencil().pts, 8, config_with_threads(threads));
    if (reference.empty()) reference = r.partition.assignment();
    EXPECT_EQ(r.partition.assignment(), reference) << "threads=" << threads;
  }
}

TEST_F(FastPartTest, RepeatedRunsAreBitIdentical) {
  const part::PartitionConfig cfg = config_with_threads(4);
  const GeoResult g1 = part::geo::partition_points_geometric(hubs().pts, 6, cfg);
  const GeoResult g2 = part::geo::partition_points_geometric(hubs().pts, 6, cfg);
  EXPECT_EQ(g1.partition.assignment(), g2.partition.assignment());
  EXPECT_EQ(g1.cutsize, g2.cutsize);
  const StreamResult s1 = part::geo::partition_points_streaming(hubs().pts, 6, cfg);
  const StreamResult s2 = part::geo::partition_points_streaming(hubs().pts, 6, cfg);
  EXPECT_EQ(s1.partition.assignment(), s2.partition.assignment());
}

// ------------------------------------------- cut == hypergraph lambda-1 ----

TEST_F(FastPartTest, GeometricCutEqualsHypergraphCutsize) {
  // The point-cloud cut (telescoped bisection cuts on the no-peel path,
  // recomputed connectivity on the peel path) must equal the lambda-1
  // connectivity cutsize of the same assignment on the REAL fine-grain
  // hypergraph — point ids match hypergraph vertex ids by construction.
  const struct {
    const model::FineGrainPoints* m;
    const hg::Hypergraph* h;
  } cases[] = {{&stencil(), &stencil_hypergraph()}, {&hubs(), &hubs_hypergraph()}};
  for (const auto& c : cases) {
    const GeoResult r =
        part::geo::partition_points_geometric(c.m->pts, 8, config_with_threads(2));
    const hg::Partition p(*c.h, 8, std::vector<idx_t>(r.partition.assignment()));
    EXPECT_EQ(r.cutsize, hg::cutsize(*c.h, p, hg::CutMetric::kConnectivity));
  }
}

TEST_F(FastPartTest, StreamingCutEqualsHypergraphCutsize) {
  const StreamResult r =
      part::geo::partition_points_streaming(stencil().pts, 8, config_with_threads(1));
  const hg::Partition p(stencil_hypergraph(), 8, std::vector<idx_t>(r.partition.assignment()));
  EXPECT_EQ(r.cutsize, hg::cutsize(stencil_hypergraph(), p, hg::CutMetric::kConnectivity));
}

// --------------------------------------------------- balance at odd K ----

TEST_F(FastPartTest, BalanceFeasibleAtOddK) {
  for (idx_t K : {3, 5, 7, 13}) {
    const part::PartitionConfig cfg = config_with_threads(2);
    const weight_t cap =
        hg::balance_cap(stencil().pts.total_vertex_weight(), K, cfg.epsilon);
    const GeoResult g = part::geo::partition_points_geometric(stencil().pts, K, cfg);
    const StreamResult s = part::geo::partition_points_streaming(stencil().pts, K, cfg);
    for (idx_t k = 0; k < K; ++k) {
      EXPECT_LE(g.partition.part_weight(k), cap) << "geometric K=" << K << " part " << k;
      EXPECT_LE(s.partition.part_weight(k), cap) << "streaming K=" << K << " part " << k;
    }
  }
}

// ------------------------------------------------------ fault recovery ----

TEST_F(FastPartTest, GeometricRecoversFromSplitFault) {
  part::PartitionConfig cfg = config_with_threads(1);
  cfg.faultSpec = "geo.split:1";  // root bisection faults once, retry succeeds
  const GeoResult r = part::geo::partition_points_geometric(stencil().pts, 4, cfg);
  EXPECT_GE(r.numRecoveries, 1);
  EXPECT_TRUE(r.partition.complete());
  drain_warnings();
}

TEST_F(FastPartTest, GeometricFaultRecoveryIsThreadCountIndependent) {
  std::vector<idx_t> reference;
  for (idx_t threads : {1, 2, 8}) {
    part::PartitionConfig cfg = config_with_threads(threads);
    cfg.faultSpec = "geo.split,geo.retry";  // every attempt faults -> greedy fallback
    const GeoResult r = part::geo::partition_points_geometric(stencil().pts, 4, cfg);
    EXPECT_GE(r.numRecoveries, 1);
    if (reference.empty()) reference = r.partition.assignment();
    EXPECT_EQ(r.partition.assignment(), reference) << "threads=" << threads;
  }
  drain_warnings();
}

TEST_F(FastPartTest, StreamingRecoversFromAssignFault) {
  part::PartitionConfig cfg = config_with_threads(1);
  cfg.faultSpec = "stream.assign:1";  // first chunk faults once, retry succeeds
  const StreamResult r = part::geo::partition_points_streaming(stencil().pts, 4, cfg);
  EXPECT_GE(r.numRecoveries, 1);
  EXPECT_TRUE(r.partition.complete());
  drain_warnings();
}

TEST_F(FastPartTest, StreamingDegradesWhenEveryAttemptFaults) {
  part::PartitionConfig cfg = config_with_threads(1);
  cfg.faultSpec = "stream.assign,stream.retry";  // chunk ladder exhausted
  const StreamResult r = part::geo::partition_points_streaming(stencil().pts, 4, cfg);
  EXPECT_GE(r.numRecoveries, 1);
  EXPECT_TRUE(r.partition.complete());
  const weight_t cap = hg::balance_cap(stencil().pts.total_vertex_weight(), 4, cfg.epsilon);
  for (idx_t k = 0; k < 4; ++k) EXPECT_LE(r.partition.part_weight(k), cap);
  drain_warnings();
}

// ------------------------------------------------- cancel and deadline ----

TEST_F(FastPartTest, ManualCancelIsHonoredMidSplit) {
  // The check-point inside median_split's sweep observes a cancel that was
  // requested before the split started — no facade entry point shields it.
  const cancel::CancelToken token = cancel::CancelToken::manual();
  token.cancel();
  part::PartitionConfig cfg = config_with_threads(1);
  cfg.cancel = token;
  const GeoPoints& pts = stencil().pts;
  const std::array<weight_t, 2> target = {pts.total_vertex_weight() / 2,
                                          pts.total_vertex_weight() -
                                              pts.total_vertex_weight() / 2};
  const std::array<weight_t, 2> cap = target;
  Rng rng(7);
  EXPECT_THROW(part::geo::median_split(pts, target, cap, cfg, rng, {}), CancelledError);
}

TEST_F(FastPartTest, ExpiredDeadlineThrowsMidSplitForTheEngineToCatch) {
  // Inside the split an expired deadline always throws (deadlineThrows);
  // the RB engine catches it and degrades the node to the greedy split.
  part::PartitionConfig cfg = config_with_threads(1);
  cfg.cancel = cancel::CancelToken::with_deadline_ms(0);
  const GeoPoints& pts = stencil().pts;
  const std::array<weight_t, 2> target = {pts.total_vertex_weight() / 2,
                                          pts.total_vertex_weight() -
                                              pts.total_vertex_weight() / 2};
  Rng rng(7);
  EXPECT_THROW(part::geo::median_split(pts, target, target, cfg, rng, {}),
               DeadlineExceededError);
}

TEST_F(FastPartTest, GeometricDeadlineDegradesToValidPartition) {
  part::PartitionConfig cfg = config_with_threads(2);
  cfg.cancel = cancel::CancelToken::with_deadline_ms(0);
  const GeoResult r = part::geo::partition_points_geometric(stencil().pts, 8, cfg);
  EXPECT_GE(r.numDegraded, 1);
  EXPECT_TRUE(r.partition.complete());
  drain_warnings();
}

TEST_F(FastPartTest, GeometricDeadlineThrowsWithoutDegradation) {
  part::PartitionConfig cfg = config_with_threads(2);
  cfg.cancel = cancel::CancelToken::with_deadline_ms(0);
  cfg.degradeOnDeadline = false;
  EXPECT_THROW(part::geo::partition_points_geometric(stencil().pts, 8, cfg),
               DeadlineExceededError);
  drain_warnings();
}

TEST_F(FastPartTest, StreamingDeadlineDegradesToValidPartition) {
  part::PartitionConfig cfg = config_with_threads(1);
  cfg.cancel = cancel::CancelToken::with_deadline_ms(0);
  const StreamResult r = part::geo::partition_points_streaming(stencil().pts, 8, cfg);
  EXPECT_EQ(r.numDegraded, 1);
  EXPECT_TRUE(r.partition.complete());
  drain_warnings();
}

// ------------------------------------------------- streaming memory bound ----

TEST_F(FastPartTest, StreamingSummariesAreBoundedByK) {
  // O(K) summary memory regardless of matrix size: the same K on a matrix
  // ~10x larger must report exactly the same summary footprint.
  const part::PartitionConfig cfg = config_with_threads(1);
  const StreamResult small = part::geo::partition_points_streaming(stencil().pts, 16, cfg);
  const model::FineGrainPoints big =
      model::build_finegrain_points(sparse::make_matrix("finan512", 1, 0.2));
  const StreamResult large = part::geo::partition_points_streaming(big.pts, 16, cfg);
  EXPECT_GT(small.summaryBytes, 0u);
  EXPECT_EQ(small.summaryBytes, large.summaryBytes);
  const StreamResult wider = part::geo::partition_points_streaming(stencil().pts, 32, cfg);
  EXPECT_EQ(wider.summaryBytes, 2 * small.summaryBytes);  // linear in K
}

// ------------------------------------------------------ method dispatch ----

TEST_F(FastPartTest, RunFinegrainDispatchesOnMethod) {
  const sparse::Csr a = sparse::make_matrix("sherman3", 1, 0.2);
  for (part::PartitionMethod method :
       {part::PartitionMethod::kMultilevel, part::PartitionMethod::kGeometric,
        part::PartitionMethod::kGeometricFm, part::PartitionMethod::kStreaming}) {
    part::PartitionConfig cfg;
    cfg.seed = 7;
    cfg.method = method;
    cfg.validateLevel = part::ValidateLevel::kStrict;
    const model::ModelRun run = model::run_finegrain(a, 4, cfg);
    EXPECT_GE(run.objective, 0) << part::method_name(method);
    EXPECT_EQ(run.decomp.numProcs, 4) << part::method_name(method);
    EXPECT_EQ(static_cast<idx_t>(run.decomp.nnzOwner.size()), a.nnz())
        << part::method_name(method);
  }
}

}  // namespace
}  // namespace fghp
