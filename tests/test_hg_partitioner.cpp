// Multilevel hypergraph partitioner tests: clustering/contraction
// invariants, identical-net merging, FM refinement monotonicity, recursive
// bisection with cut-net splitting (the telescoping property), K-way
// refinement, and the facade's balance/determinism guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "hypergraph/builder.hpp"
#include "hypergraph/metrics.hpp"
#include "hypergraph/validate.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/coarsen.hpp"
#include "partition/hg/initial.hpp"
#include "partition/hg/kway_refine.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/hg/recursive.hpp"
#include "partition/hg/refine.hpp"
#include "sparse/generators.hpp"
#include "util/rng.hpp"

namespace fghp::part {
namespace {

using hg::CutMetric;
using hg::Hypergraph;
using hg::Partition;

Hypergraph random_hg(idx_t numVerts, idx_t numNets, idx_t maxNetSize, Rng& rng,
                     bool unitWeights = false) {
  hg::HypergraphBuilder b(numVerts);
  for (idx_t n = 0; n < numNets; ++n) {
    std::set<idx_t> pins;
    const idx_t size = rng.uniform(2, maxNetSize);
    while (static_cast<idx_t>(pins.size()) < size)
      pins.insert(rng.uniform(0, numVerts - 1));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv, 1);
  }
  if (!unitWeights) {
    for (idx_t v = 0; v < numVerts; ++v) b.set_vertex_weight(v, rng.uniform(1, 3));
  }
  return std::move(b).build();
}

/// Fine-grain hypergraph of a mid-size matrix — a realistic instance.
Hypergraph finegrain_instance(std::uint64_t seed = 5) {
  const sparse::Csr a = sparse::random_square(120, 5, seed);
  return model::build_finegrain(a).h;
}

// ------------------------------------------------------------ coarsen ----

TEST(Coarsen, ClusterMapsCoverEveryVertex) {
  Rng rng(1);
  const Hypergraph h = random_hg(80, 60, 6, rng);
  Rng r2(2), r3(2), r4(2);
  for (const auto& map :
       {hgc::cluster_hcm(h, r2, 100), hgc::cluster_random(h, r3),
        hgc::cluster_agglomerative(h, r4, 100, h.total_vertex_weight() / 4)}) {
    ASSERT_EQ(map.size(), 80u);
    for (idx_t c : map) EXPECT_NE(c, kInvalidIdx);
  }
}

TEST(Coarsen, HcmProducesAtMostPairs) {
  Rng rng(3);
  const Hypergraph h = random_hg(100, 80, 5, rng);
  Rng r2(4);
  const auto map = hgc::cluster_hcm(h, r2, 100);
  std::vector<idx_t> count(100, 0);
  for (idx_t c : map) ++count[static_cast<std::size_t>(c)];
  for (idx_t c : count) EXPECT_LE(c, 2);
}

TEST(Coarsen, AgglomerativeRespectsWeightCap) {
  Rng rng(5);
  const Hypergraph h = random_hg(100, 80, 5, rng);
  Rng r2(6);
  const weight_t cap = h.total_vertex_weight() / 10;
  const auto map = hgc::cluster_agglomerative(h, r2, 100, cap);
  std::vector<weight_t> w(100, 0);
  for (idx_t v = 0; v < 100; ++v)
    w[static_cast<std::size_t>(map[static_cast<std::size_t>(v)])] += h.vertex_weight(v);
  for (weight_t cw : w) EXPECT_LE(cw, cap);
}

TEST(Coarsen, ContractPreservesTotalWeight) {
  Rng rng(7);
  const Hypergraph h = random_hg(60, 50, 6, rng);
  Rng r2(8);
  const auto level = hgc::contract(h, hgc::cluster_hcm(h, r2, 100));
  EXPECT_EQ(level.coarse.total_vertex_weight(), h.total_vertex_weight());
  EXPECT_LT(level.coarse.num_vertices(), h.num_vertices());
  EXPECT_TRUE(hg::validate(level.coarse).empty());
}

TEST(Coarsen, ContractDropsSinglePinNets) {
  hg::HypergraphBuilder b(4);
  b.add_net(std::vector<idx_t>{0, 1});  // collapses into one cluster -> dropped
  b.add_net(std::vector<idx_t>{0, 2});
  Hypergraph h = std::move(b).build();
  const hgc::ClusterMap map = {0, 0, 1, 2};
  const auto level = hgc::contract(h, map);
  EXPECT_EQ(level.coarse.num_vertices(), 3);
  EXPECT_EQ(level.coarse.num_nets(), 1);  // only {cluster0, cluster1} survives
}

TEST(Coarsen, ContractMergesIdenticalNets) {
  hg::HypergraphBuilder b(6);
  b.add_net(std::vector<idx_t>{0, 2}, 1);
  b.add_net(std::vector<idx_t>{1, 3}, 2);  // identical to net 0 after {0,1},{2,3} merge
  b.add_net(std::vector<idx_t>{4, 5}, 1);
  Hypergraph h = std::move(b).build();
  const hgc::ClusterMap map = {0, 0, 1, 1, 2, 3};
  const auto level = hgc::contract(h, map);
  EXPECT_EQ(level.coarse.num_nets(), 2);
  // The merged net carries the summed cost 1 + 2 = 3.
  weight_t maxCost = 0;
  for (idx_t n = 0; n < level.coarse.num_nets(); ++n)
    maxCost = std::max(maxCost, level.coarse.net_cost(n));
  EXPECT_EQ(maxCost, 3);
}

TEST(Coarsen, ProjectedCoarseCutEqualsFineCut) {
  // Any coarse partition, projected through the map, must give the same
  // connectivity-1 cutsize (merged identical nets sum their costs; dropped
  // single-pin nets are never cut).
  Rng rng(9);
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = random_hg(70, 60, 6, rng);
    Rng r2(static_cast<std::uint64_t>(trial) + 100);
    const auto level = hgc::contract(h, hgc::cluster_hcm(h, r2, 100));
    const idx_t K = 3;
    std::vector<idx_t> coarseAssign(static_cast<std::size_t>(level.coarse.num_vertices()));
    for (auto& a : coarseAssign) a = r2.uniform(0, K - 1);
    const Partition cp(level.coarse, K, coarseAssign);
    std::vector<idx_t> fineAssign(70);
    for (idx_t v = 0; v < 70; ++v)
      fineAssign[static_cast<std::size_t>(v)] =
          coarseAssign[static_cast<std::size_t>(level.fineToCoarse[static_cast<std::size_t>(v)])];
    const Partition fp(h, K, fineAssign);
    EXPECT_EQ(hg::cutsize(level.coarse, cp, CutMetric::kConnectivity),
              hg::cutsize(h, fp, CutMetric::kConnectivity));
  }
}

TEST(Coarsen, OneLevelShrinksRealisticInstance) {
  const Hypergraph h = finegrain_instance();
  PartitionConfig cfg;
  Rng rng(11);
  const auto level = hgc::coarsen_one_level(h, cfg, rng);
  EXPECT_LT(level.coarse.num_vertices(), h.num_vertices());
  EXPECT_LE(level.coarse.num_pins(), h.num_pins());
}

// ------------------------------------------------------------ initial ----

TEST(Initial, RandomBisectionNearTargets) {
  Rng rng(13);
  const Hypergraph h = random_hg(200, 100, 5, rng, /*unitWeights=*/true);
  const std::array<weight_t, 2> target = {100, 100};
  Rng r2(14);
  const Partition p = hgi::random_bisection(h, target, r2);
  EXPECT_TRUE(p.complete());
  EXPECT_NEAR(static_cast<double>(p.part_weight(0)), 100.0, 2.0);
}

TEST(Initial, GhgReachesTargetWeight) {
  Rng rng(15);
  const Hypergraph h = random_hg(200, 150, 5, rng, /*unitWeights=*/true);
  const std::array<weight_t, 2> target = {120, 80};
  Rng r2(16);
  const Partition p = hgi::ghg_bisection(h, target, r2);
  EXPECT_TRUE(p.complete());
  EXPECT_GE(p.part_weight(1), 80);
  EXPECT_LE(p.part_weight(1), 80 + 3);  // overshoot bounded by max vertex weight
}

TEST(Initial, UnequalTargetsHonored) {
  Rng rng(17);
  const Hypergraph h = random_hg(300, 150, 5, rng, /*unitWeights=*/true);
  const std::array<weight_t, 2> target = {225, 75};
  const std::array<weight_t, 2> maxW = {236, 79};
  PartitionConfig cfg;
  Rng r2(18);
  const Partition p = hgi::initial_bisection(h, target, maxW, cfg, r2);
  EXPECT_LE(p.part_weight(0), maxW[0]);
  EXPECT_LE(p.part_weight(1), maxW[1]);
}

// --------------------------------------------------------------- FM ----

TEST(Fm, NeverWorsensCut) {
  Rng rng(19);
  PartitionConfig cfg;
  hgr::BisectionFM fm(cfg);
  for (int trial = 0; trial < 15; ++trial) {
    const Hypergraph h = random_hg(80, 70, 6, rng);
    std::vector<idx_t> assign(80);
    for (auto& a : assign) a = rng.uniform(0, 1);
    Partition p(h, 2, assign);
    const weight_t before = hgr::BisectionFM::compute_cut(h, p);
    const weight_t total = h.total_vertex_weight();
    const std::array<weight_t, 2> maxW = {total, total};  // no balance pressure
    Rng r2(static_cast<std::uint64_t>(trial));
    const weight_t after = fm.refine(h, p, maxW, r2);
    EXPECT_LE(after, before);
    EXPECT_EQ(after, hgr::BisectionFM::compute_cut(h, p));  // reported == actual
  }
}

TEST(Fm, RespectsBalanceCaps) {
  Rng rng(21);
  PartitionConfig cfg;
  hgr::BisectionFM fm(cfg);
  const Hypergraph h = random_hg(120, 90, 5, rng, /*unitWeights=*/true);
  std::vector<idx_t> assign(120);
  for (idx_t v = 0; v < 120; ++v) assign[static_cast<std::size_t>(v)] = v % 2;
  Partition p(h, 2, assign);
  const std::array<weight_t, 2> maxW = {66, 66};
  Rng r2(22);
  fm.refine(h, p, maxW, r2);
  EXPECT_LE(p.part_weight(0), 66);
  EXPECT_LE(p.part_weight(1), 66);
}

TEST(Fm, RepairsInfeasibleStart) {
  Rng rng(23);
  PartitionConfig cfg;
  hgr::BisectionFM fm(cfg);
  const Hypergraph h = random_hg(100, 60, 5, rng, /*unitWeights=*/true);
  Partition p(h, 2, std::vector<idx_t>(100, 0));  // everything on side 0
  const std::array<weight_t, 2> maxW = {55, 55};
  Rng r2(24);
  fm.refine(h, p, maxW, r2);
  EXPECT_LE(p.part_weight(0), 55);
  EXPECT_LE(p.part_weight(1), 55);
}

TEST(Fm, SolvesSeparableInstanceExactly) {
  // Two cliques of nets joined by nothing: optimal bisection cut is 0.
  hg::HypergraphBuilder b(20);
  Rng rng(25);
  for (int n = 0; n < 30; ++n) {
    std::set<idx_t> pins;
    const idx_t base = n % 2 == 0 ? 0 : 10;
    while (pins.size() < 3) pins.insert(base + rng.uniform(0, 9));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv);
  }
  const Hypergraph h = std::move(b).build();
  std::vector<idx_t> assign(20);
  for (idx_t v = 0; v < 20; ++v) assign[static_cast<std::size_t>(v)] = v % 2;  // awful start
  Partition p(h, 2, assign);
  PartitionConfig cfg;
  cfg.maxFmPasses = 10;
  hgr::BisectionFM fm(cfg);
  Rng r2(26);
  // One unit of balance slack; a tight 10/10 cap forbids every first move.
  const weight_t cut = fm.refine(h, p, {11, 11}, r2);
  EXPECT_EQ(cut, 0);
}

// ---------------------------------------------------------- recursive ----

TEST(Recursive, PerLevelEpsilonCompounds) {
  const double eps = 0.03;
  for (idx_t K : {2, 4, 8, 16, 64}) {
    const double lvl = hgrb::per_level_epsilon(eps, K);
    const double levels = std::ceil(std::log2(static_cast<double>(K)));
    EXPECT_NEAR(std::pow(1.0 + lvl, levels), 1.0 + eps, 1e-9);
  }
}

TEST(Recursive, ExtractSideSplitsCutNets) {
  hg::HypergraphBuilder b(6);
  b.add_net(std::vector<idx_t>{0, 1, 3, 4});  // cut: {0,1} left, {3,4} right
  b.add_net(std::vector<idx_t>{0, 2});        // internal left
  b.add_net(std::vector<idx_t>{2, 5});        // cut with single pin each side
  const Hypergraph h = std::move(b).build();
  const Partition bisection(h, 2, {0, 0, 0, 1, 1, 1});

  const auto left = hgrb::extract_side(h, bisection, 0, CutMetric::kConnectivity);
  EXPECT_EQ(left.sub.num_vertices(), 3);
  EXPECT_EQ(left.sub.num_nets(), 2);  // net0 restriction {0,1} + net1 {0,2}; net2 drops to 1 pin
  const auto right = hgrb::extract_side(h, bisection, 1, CutMetric::kConnectivity);
  EXPECT_EQ(right.sub.num_nets(), 1);  // net0 restriction {3,4}

  // Under the cut-net metric, cut nets are dropped entirely.
  const auto leftCutNet = hgrb::extract_side(h, bisection, 0, CutMetric::kCutNet);
  EXPECT_EQ(leftCutNet.sub.num_nets(), 1);  // only the internal net survives
}

TEST(Recursive, CutNetSplittingTelescopes) {
  // The defining property: sum of bisection cuts == final lambda-1 cutsize.
  Rng rngOuter(27);
  PartitionConfig cfg;
  cfg.kwayRefine = false;  // the polish would break the per-level identity
  for (idx_t K : {2, 3, 4, 7, 8}) {
    const Hypergraph h = finegrain_instance(30 + static_cast<std::uint64_t>(K));
    Rng rng(cfg.seed);
    const auto result = hgrb::partition_recursive(h, K, cfg, rng);
    EXPECT_EQ(result.sumOfBisectionCuts,
              hg::cutsize(h, result.partition, CutMetric::kConnectivity))
        << "K=" << K;
  }
}

TEST(Recursive, CoversAllParts) {
  PartitionConfig cfg;
  const Hypergraph h = finegrain_instance(40);
  Rng rng(cfg.seed);
  const auto result = hgrb::partition_recursive(h, 8, cfg, rng);
  std::set<idx_t> used;
  for (idx_t v = 0; v < h.num_vertices(); ++v) used.insert(result.partition.part_of(v));
  EXPECT_EQ(used.size(), 8u);
}

// -------------------------------------------------------- kway refine ----

TEST(KwayRefine, NeverWorsensAndReportsGain) {
  Rng rng(29);
  PartitionConfig cfg;
  for (int trial = 0; trial < 10; ++trial) {
    const Hypergraph h = random_hg(100, 90, 6, rng, /*unitWeights=*/true);
    const idx_t K = 4;
    std::vector<idx_t> assign(100);
    for (idx_t v = 0; v < 100; ++v) assign[static_cast<std::size_t>(v)] = v % K;
    Partition p(h, K, assign);
    const weight_t before = hg::cutsize(h, p, CutMetric::kConnectivity);
    Rng r2(static_cast<std::uint64_t>(trial));
    const weight_t gain = hgk::kway_refine(h, p, cfg, r2);
    const weight_t after = hg::cutsize(h, p, CutMetric::kConnectivity);
    EXPECT_EQ(before - after, gain);
    EXPECT_LE(after, before);
  }
}

TEST(KwayRebalance, HandlesHeavyVertexOnlyParts) {
  // Regression: a part holding only near-cap heavy vertices (hub rows) has
  // no single feasible move or swap; the cascade must aggregate headroom.
  hg::HypergraphBuilder b(0);
  const idx_t K = 4;
  // 8 hubs of weight 90 (two parts of 4 hubs = 360 each) + 240 unit
  // vertices across the other two parts. Total 960, avg 240, cap 247.
  // 8 hubs of weight 90 in two hub-only parts (360 each), 400 unit vertices
  // filling the other two parts to 200 each. Total 1120, avg 280, cap 288:
  // no part can absorb a hub without first exporting units.
  std::vector<idx_t> assign;
  for (int i = 0; i < 8; ++i) {
    b.add_vertex(90);
    assign.push_back(i < 4 ? 0 : 1);
  }
  for (int i = 0; i < 400; ++i) {
    b.add_vertex(1);
    assign.push_back(2 + i % 2);
  }
  const Hypergraph h = std::move(b).build();
  Partition p(h, K, assign);
  EXPECT_GT(p.part_weight(0), 288);
  PartitionConfig cfg;
  Rng rng(1);
  hgk::kway_rebalance(h, p, cfg.epsilon, rng);
  EXPECT_TRUE(hg::is_balanced(h, p, cfg.epsilon));
}

TEST(KwayRefine, PreservesBalance) {
  Rng rng(31);
  PartitionConfig cfg;
  cfg.epsilon = 0.05;
  const Hypergraph h = random_hg(200, 150, 5, rng, /*unitWeights=*/true);
  const idx_t K = 5;
  std::vector<idx_t> assign(200);
  for (idx_t v = 0; v < 200; ++v) assign[static_cast<std::size_t>(v)] = v % K;
  Partition p(h, K, assign);
  Rng r2(32);
  hgk::kway_refine(h, p, cfg, r2);
  EXPECT_TRUE(hg::is_balanced(h, p, cfg.epsilon));
}

// -------------------------------------------------------------- facade ----

class HgPartitionerSweep : public ::testing::TestWithParam<idx_t> {};

TEST_P(HgPartitionerSweep, BalancedAndBetterThanRandom) {
  const idx_t K = GetParam();
  const Hypergraph h = finegrain_instance(50);
  PartitionConfig cfg;
  cfg.epsilon = 0.03;
  const HgResult r = partition_hypergraph(h, K, cfg);

  EXPECT_TRUE(r.partition.complete());
  EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon)) << "K=" << K;
  EXPECT_EQ(r.cutsize, hg::cutsize(h, r.partition, CutMetric::kConnectivity));

  // Sanity: beats a random balanced partition by a wide margin.
  Rng rng(1234);
  std::vector<idx_t> assign(static_cast<std::size_t>(h.num_vertices()));
  for (std::size_t v = 0; v < assign.size(); ++v)
    assign[v] = static_cast<idx_t>(v) % K;
  const Partition randomP(h, K, assign);
  if (K > 1) {
    EXPECT_LT(static_cast<double>(r.cutsize),
              0.8 * static_cast<double>(hg::cutsize(h, randomP, CutMetric::kConnectivity)));
  }
}

INSTANTIATE_TEST_SUITE_P(KSweep, HgPartitionerSweep, ::testing::Values(1, 2, 3, 4, 8, 16));

TEST(HgPartitioner, DeterministicInSeed) {
  const Hypergraph h = finegrain_instance(60);
  PartitionConfig cfg;
  cfg.seed = 77;
  const HgResult a = partition_hypergraph(h, 8, cfg);
  const HgResult b = partition_hypergraph(h, 8, cfg);
  EXPECT_EQ(a.partition.assignment(), b.partition.assignment());
  cfg.seed = 78;
  const HgResult c = partition_hypergraph(h, 8, cfg);
  EXPECT_NE(a.partition.assignment(), c.partition.assignment());
}

TEST(HgPartitioner, RestartsNeverWorsenAndStayDeterministic) {
  const Hypergraph h = finegrain_instance(65);
  PartitionConfig cfg;
  cfg.seed = 3;
  const HgResult single = partition_hypergraph(h, 8, cfg);
  cfg.numRestarts = 4;
  const HgResult multi = partition_hypergraph(h, 8, cfg);
  EXPECT_LE(multi.cutsize, single.cutsize);
  EXPECT_TRUE(hg::is_balanced(h, multi.partition, cfg.epsilon));
  const HgResult multi2 = partition_hypergraph(h, 8, cfg);
  EXPECT_EQ(multi.partition.assignment(), multi2.partition.assignment());
}

TEST(HgPartitioner, KEqualsOneIsTrivial) {
  const Hypergraph h = finegrain_instance(70);
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 1, cfg);
  EXPECT_EQ(r.cutsize, 0);
  EXPECT_EQ(r.numCutNets, 0);
}

TEST(HgPartitioner, CutNetMetricSupported) {
  const Hypergraph h = finegrain_instance(80);
  PartitionConfig cfg;
  cfg.metric = CutMetric::kCutNet;
  const HgResult r = partition_hypergraph(h, 4, cfg);
  EXPECT_EQ(r.cutsize, hg::cutsize(h, r.partition, CutMetric::kCutNet));
  EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon));
}

TEST(HgPartitioner, ZeroWeightDummiesDoNotBreakBalance) {
  // Matrix with empty diagonal: every row gets a dummy vertex.
  const sparse::Csr a = sparse::random_square(100, 4, 42, /*withDiagonal=*/false);
  const model::FineGrainModel m = model::build_finegrain(a);
  EXPECT_GT(m.h.num_vertices(), m.numRealVertices);
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(m.h, 4, cfg);
  EXPECT_TRUE(hg::is_balanced(m.h, r.partition, cfg.epsilon));
}

// ------------------------------------------------------- pathological ----

TEST(HgPartitionerEdge, SingleVertex) {
  hg::HypergraphBuilder b(1);
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 1, cfg);
  EXPECT_EQ(r.partition.part_of(0), 0);
  EXPECT_EQ(r.cutsize, 0);
}

TEST(HgPartitionerEdge, EmptyHypergraph) {
  hg::HypergraphBuilder b(0);
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 2, cfg);
  EXPECT_EQ(r.cutsize, 0);
  EXPECT_TRUE(r.partition.complete());
}

TEST(HgPartitionerEdge, KGreaterThanVertices) {
  hg::HypergraphBuilder b(3);
  b.add_net(std::vector<idx_t>{0, 1, 2});
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 8, cfg);
  EXPECT_TRUE(r.partition.complete());
  // Only 3 vertices: cut is at most lambda-1 = 2 for the single net.
  EXPECT_LE(r.cutsize, 2);
}

TEST(HgPartitionerEdge, NetSpanningAllVertices) {
  hg::HypergraphBuilder b(64);
  std::vector<idx_t> all(64);
  std::iota(all.begin(), all.end(), idx_t{0});
  b.add_net(all, 5);
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 4, cfg);
  // The universal net must end up with lambda = 4: cutsize 5 * 3.
  EXPECT_EQ(r.cutsize, 15);
  EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon));
}

TEST(HgPartitionerEdge, ManyIdenticalNets) {
  // 50 copies of the same net must merge during coarsening and still
  // produce the correct cutsize accounting (cost 50 if cut).
  hg::HypergraphBuilder b(32);
  for (int c = 0; c < 50; ++c) {
    b.add_net(std::vector<idx_t>{0, 1, 2, 3});
  }
  for (idx_t v = 4; v < 32; ++v) {
    b.add_net(std::vector<idx_t>{v, (v + 1) % 32});
  }
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 2, cfg);
  EXPECT_EQ(r.cutsize, hg::cutsize(h, r.partition, hg::CutMetric::kConnectivity));
  // Keeping the 4 shared vertices together is worth 50 units; any sane
  // partitioner does so here.
  std::set<idx_t> parts;
  for (idx_t v = 0; v < 4; ++v) parts.insert(r.partition.part_of(v));
  EXPECT_EQ(parts.size(), 1u);
}

TEST(HgPartitionerEdge, IsolatedVertices) {
  hg::HypergraphBuilder b(20);  // no nets at all
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  const HgResult r = partition_hypergraph(h, 4, cfg);
  EXPECT_EQ(r.cutsize, 0);
  EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon));
}

TEST(HgPartitionerEdge, ZeroWeightVerticesOnly) {
  hg::HypergraphBuilder b(0);
  for (int v = 0; v < 10; ++v) b.add_vertex(0);
  b.add_net(std::vector<idx_t>{0, 1, 2});
  const Hypergraph h = std::move(b).build();
  PartitionConfig cfg;
  EXPECT_NO_THROW(partition_hypergraph(h, 2, cfg));
}

class CoarseningAblation : public ::testing::TestWithParam<Coarsening> {};

TEST_P(CoarseningAblation, AllPoliciesProduceValidPartitions) {
  const Hypergraph h = finegrain_instance(90);
  PartitionConfig cfg;
  cfg.coarsening = GetParam();
  const HgResult r = partition_hypergraph(h, 4, cfg);
  EXPECT_TRUE(r.partition.complete());
  EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon));
}

INSTANTIATE_TEST_SUITE_P(Policies, CoarseningAblation,
                         ::testing::Values(Coarsening::kHeavyConnectivity,
                                           Coarsening::kAgglomerative,
                                           Coarsening::kRandomMatching, Coarsening::kNone));

}  // namespace
}  // namespace fghp::part
