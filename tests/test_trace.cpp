// Tracing & metrics layer tests: span nesting across thread counts, ring
// overflow (drops-oldest with an exact drop count), Chrome trace-event JSON
// round-trip through a minimal parser, the disabled-mode guarantees (records
// nothing, allocates nothing), the phase-timer adapter, ScopedCapture, the
// metrics registry JSON, and partition bit-identity with tracing on/off.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/phase_timers.hpp"
#include "sparse/generators.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

// ---------------------------------------------------------------------------
// Global allocation counter (same technique as test_compiled): the disabled-
// mode test asserts that an untraced instrumentation site performs zero heap
// allocations.
namespace {
std::atomic<long> g_allocCount{0};
}

void* operator new(std::size_t sz) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t sz) {
  g_allocCount.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(sz ? sz : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fghp {
namespace {

// ------------------------------------------------ minimal JSON parser ----
// Just enough JSON to round-trip the exporters' output: objects, arrays,
// strings with the escapes the writer emits, and doubles. Throws
// std::runtime_error on malformed input so a bad export fails the test.

struct JVal {
  enum Kind { kNull, kBool, kNum, kStr, kArr, kObj };
  Kind kind = kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<JVal> arr;
  std::map<std::string, JVal> obj;

  const JVal& at(const std::string& key) const {
    const auto it = obj.find(key);
    if (it == obj.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return obj.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  JVal parse() {
    JVal v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing JSON content");
    return v;
  }

 private:
  std::string s_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JVal value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JVal v;
        v.kind = JVal::kStr;
        v.str = string();
        return v;
      }
      case 't':
      case 'f': return boolean();
      case 'n': {
        literal("null");
        return JVal{};
      }
      default: return number();
    }
  }

  void literal(const char* lit) {
    for (const char* c = lit; *c != '\0'; ++c) expect(*c);
  }

  JVal boolean() {
    JVal v;
    v.kind = JVal::kBool;
    if (peek() == 't') {
      literal("true");
      v.boolean = true;
    } else {
      literal("false");
    }
    return v;
  }

  JVal number() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '-' ||
            s_[pos_] == '+' || s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("invalid JSON value");
    JVal v;
    v.kind = JVal::kNum;
    v.num = std::stod(s_.substr(start, pos_ - start));
    return v;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (peek() != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        const char esc = peek();
        ++pos_;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
            out += static_cast<char>(std::stoi(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            break;
          }
          default: fail("unsupported escape");
        }
      } else {
        out += c;
      }
    }
    ++pos_;  // closing quote
    return out;
  }

  JVal object() {
    expect('{');
    JVal v;
    v.kind = JVal::kObj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JVal array() {
    expect('[');
    JVal v;
    v.kind = JVal::kArr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }
};

/// Exports the current trace and parses it back.
JVal export_and_parse() {
  std::ostringstream os;
  trace::write_chrome_trace(os);
  return JsonParser(os.str()).parse();
}

/// RAII guard: every test leaves tracing disabled and empty. The explicit
/// default capacity keeps tests independent of a smaller ring a previous
/// test may have installed (capacity is process-global state).
struct TraceSandbox {
  explicit TraceSandbox(std::size_t cap = 1u << 15) {
    trace::enable(cap);
    trace::reset();
  }
  ~TraceSandbox() {
    trace::disable();
    trace::reset();
  }
};

const JVal* find_event(const JVal& doc, const std::string& name) {
  for (const JVal& e : doc.at("traceEvents").arr)
    if (e.at("name").str == name) return &e;
  return nullptr;
}

// ------------------------------------------------------- JSON round-trip ----

TEST(ChromeTrace, RoundTripSpanInstantCounter) {
  TraceSandbox sandbox;

  const std::uint64_t t0 = trace::now_ns();
  trace::complete("cat.span", "a.span", t0, t0 + 2500, "k0", 7, "k1", -3);
  trace::instant("cat.inst", "a.instant", "ord", 42);
  trace::counter("cat.ctr", "a.counter", 12.5, "proc", 2);

  const JVal doc = export_and_parse();
  EXPECT_EQ(doc.at("otherData").at("droppedEvents").num, 0.0);
  ASSERT_EQ(doc.at("traceEvents").arr.size(), 3u);

  const JVal* span = find_event(doc, "a.span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("ph").str, "X");
  EXPECT_EQ(span->at("cat").str, "cat.span");
  EXPECT_EQ(span->at("pid").num, 1.0);
  EXPECT_NEAR(span->at("dur").num, 2.5, 1e-9);  // 2500 ns in microseconds
  EXPECT_EQ(span->at("args").at("k0").num, 7.0);
  EXPECT_EQ(span->at("args").at("k1").num, -3.0);

  const JVal* inst = find_event(doc, "a.instant");
  ASSERT_NE(inst, nullptr);
  EXPECT_EQ(inst->at("ph").str, "i");
  EXPECT_EQ(inst->at("s").str, "t");
  EXPECT_EQ(inst->at("args").at("ord").num, 42.0);
  EXPECT_FALSE(inst->has("dur"));

  const JVal* ctr = find_event(doc, "a.counter");
  ASSERT_NE(ctr, nullptr);
  EXPECT_EQ(ctr->at("ph").str, "C");
  EXPECT_EQ(ctr->at("args").at("value").num, 12.5);
  EXPECT_EQ(ctr->at("args").at("proc").num, 2.0);
}

// ---------------------------------------------------------- span nesting ----

TEST(TraceSpans, NestedScopesContainedSingleThread) {
  TraceSandbox sandbox;
  {
    trace::TraceScope outer("t", "outer");
    {
      trace::TraceScope mid("t", "mid");
      trace::TraceScope inner("t", "inner");
    }
  }

  const JVal doc = export_and_parse();
  const JVal* outer = find_event(doc, "outer");
  const JVal* mid = find_event(doc, "mid");
  const JVal* inner = find_event(doc, "inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(mid, nullptr);
  ASSERT_NE(inner, nullptr);

  EXPECT_EQ(outer->at("tid").num, mid->at("tid").num);
  EXPECT_EQ(mid->at("tid").num, inner->at("tid").num);

  auto contains = [](const JVal& a, const JVal& b) {  // a contains b
    return a.at("ts").num <= b.at("ts").num &&
           b.at("ts").num + b.at("dur").num <= a.at("ts").num + a.at("dur").num;
  };
  EXPECT_TRUE(contains(*outer, *mid));
  EXPECT_TRUE(contains(*mid, *inner));
}

class TraceSpansMt : public ::testing::TestWithParam<int> {};

TEST_P(TraceSpansMt, PerThreadNestingAndDistinctTids) {
  const int numThreads = GetParam();
  TraceSandbox sandbox;

  std::vector<std::thread> pool;
  for (int t = 0; t < numThreads; ++t) {
    pool.emplace_back([t] {
      trace::TraceScope outer("mt", "mt.outer", "tix", t);
      trace::TraceScope inner("mt", "mt.inner", "tix", t);
    });
  }
  for (auto& th : pool) th.join();

  const JVal doc = export_and_parse();
  std::map<int, const JVal*> outers, inners;
  for (const JVal& e : doc.at("traceEvents").arr) {
    const int tix = static_cast<int>(e.at("args").at("tix").num);
    if (e.at("name").str == "mt.outer") outers[tix] = &e;
    if (e.at("name").str == "mt.inner") inners[tix] = &e;
  }
  ASSERT_EQ(outers.size(), static_cast<std::size_t>(numThreads));
  ASSERT_EQ(inners.size(), static_cast<std::size_t>(numThreads));

  std::vector<double> tids;
  for (const auto& [tix, outer] : outers) {
    const JVal* inner = inners.at(tix);
    // Same thread recorded both; the inner scope is contained in the outer.
    EXPECT_EQ(outer->at("tid").num, inner->at("tid").num);
    EXPECT_LE(outer->at("ts").num, inner->at("ts").num);
    EXPECT_LE(inner->at("ts").num + inner->at("dur").num,
              outer->at("ts").num + outer->at("dur").num);
    tids.push_back(outer->at("tid").num);
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end())
      << "each thread must own its own buffer (distinct tid)";
}

INSTANTIATE_TEST_SUITE_P(Threads, TraceSpansMt, ::testing::Values(1, 2, 8));

// ----------------------------------------------------------- ring buffer ----

TEST(TraceRing, OverflowDropsOldestAndCountsDrops) {
  TraceSandbox sandbox(16);

  for (int i = 0; i < 40; ++i) trace::instant("ring", "tick", "i", i);

  EXPECT_EQ(trace::event_count(), 16u);
  EXPECT_EQ(trace::dropped_count(), 24u);

  const JVal doc = export_and_parse();
  EXPECT_EQ(doc.at("otherData").at("droppedEvents").num, 24.0);
  const auto& events = doc.at("traceEvents").arr;
  ASSERT_EQ(events.size(), 16u);
  // The survivors are exactly the newest 16, still in emission order.
  for (std::size_t k = 0; k < events.size(); ++k)
    EXPECT_EQ(events[k].at("args").at("i").num, static_cast<double>(24 + k));
}

// -------------------------------------------------------- disabled mode ----

TEST(TraceDisabled, RecordsNothingAndAllocatesNothing) {
  trace::disable();
  trace::reset();

  trace::now_ns();  // warm the clock epoch outside the measured window

  const long before = g_allocCount.load(std::memory_order_relaxed);
  for (int i = 0; i < 100; ++i) {
    trace::TraceScope span("off", "site", "arg", i);
    trace::instant("off", "instant", "arg", i);
    trace::counter("off", "counter", 1.0, "arg", i);
  }
  const long delta = g_allocCount.load(std::memory_order_relaxed) - before;

  EXPECT_EQ(delta, 0) << "a disabled site must not touch the heap";
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::dropped_count(), 0u);
}

// ------------------------------------------------- phase-timer adapter ----

TEST(PhaseTimers, ScopedPhaseFeedsTimersAndTrace) {
  TraceSandbox sandbox;
  const part::PhaseSnapshot before = part::phase_timers().snapshot();
  {
    part::ScopedPhase phase(part::Phase::kCoarsen, "level", 3);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const part::PhaseSnapshot delta = part::phase_timers().snapshot() - before;
  EXPECT_GT(delta[part::Phase::kCoarsen], 0.0);
  EXPECT_EQ(delta[part::Phase::kInitial], 0.0);

  const JVal doc = export_and_parse();
  const JVal* span = find_event(doc, "coarsen");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->at("cat").str, "rb.phase");
  EXPECT_EQ(span->at("args").at("level").num, 3.0);
  // Both views read the same clock pair: the span duration (us) matches the
  // accumulated phase seconds.
  EXPECT_NEAR(span->at("dur").num * 1e-6, delta[part::Phase::kCoarsen],
              delta[part::Phase::kCoarsen] * 0.01 + 1e-9);
}

// --------------------------------------------- capture & instrumentation ----

TEST(ScopedCapture, WritesPipelineTraceAndRestoresState) {
  // Restore the full-size ring (a previous test may have shrunk it), then
  // start from the disabled state the capture is expected to return to.
  trace::enable(1u << 15);
  trace::disable();
  trace::reset();
  ASSERT_FALSE(trace::enabled());
  const std::string path = ::testing::TempDir() + "fghp_capture_trace.json";

  const sparse::Csr a = sparse::stencil2d(12, 12);
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg;
  cfg.numThreads = 1;
  cfg.traceOut = path;
  part::partition_hypergraph(m.h, 4, cfg);

  EXPECT_FALSE(trace::enabled()) << "capture must restore the prior state";

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const JVal doc = JsonParser(buf.str()).parse();

  std::map<std::string, int> byName;
  for (const JVal& e : doc.at("traceEvents").arr) ++byName[e.at("name").str];
  EXPECT_GT(byName["hg.partition"], 0);
  EXPECT_GT(byName["rb.node"], 0);
  EXPECT_GT(byName["coarsen"], 0) << "phase spans missing";
  trace::reset();
  std::remove(path.c_str());
}

// ------------------------------------------------------ metrics registry ----

TEST(Metrics, RegistryJsonRoundTrip) {
  metrics::Registry reg;
  reg.counter("a.count").add(3);
  reg.counter("a.count").add(4);
  reg.gauge("b.gauge").set(-17);
  metrics::Histogram& h = reg.histogram("c.hist", {10, 100});
  h.observe(5);
  h.observe(50);
  h.observe(5000);

  std::ostringstream os;
  reg.write_json(os);
  const JVal doc = JsonParser(os.str()).parse();

  EXPECT_EQ(doc.at("counters").at("a.count").num, 7.0);
  EXPECT_EQ(doc.at("gauges").at("b.gauge").num, -17.0);
  const JVal& hist = doc.at("histograms").at("c.hist");
  ASSERT_EQ(hist.at("bounds").arr.size(), 2u);
  ASSERT_EQ(hist.at("counts").arr.size(), 3u);
  EXPECT_EQ(hist.at("counts").arr[0].num, 1.0);
  EXPECT_EQ(hist.at("counts").arr[1].num, 1.0);
  EXPECT_EQ(hist.at("counts").arr[2].num, 1.0);
  EXPECT_EQ(hist.at("count").num, 3.0);
  EXPECT_EQ(hist.at("sum").num, 5055.0);

  reg.reset();
  EXPECT_EQ(reg.counter("a.count").value(), 0);
  EXPECT_EQ(reg.gauge("b.gauge").value(), 0);
}

TEST(Metrics, HistogramBucketsByUpperBound) {
  metrics::Histogram h({0, 8, 64});
  h.observe(0);   // bucket 0 (<= 0)
  h.observe(1);   // bucket 1
  h.observe(8);   // bucket 1 (inclusive upper bound)
  h.observe(9);   // bucket 2
  h.observe(65);  // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 1);
  EXPECT_EQ(h.bucket_count(1), 2);
  EXPECT_EQ(h.bucket_count(2), 1);
  EXPECT_EQ(h.bucket_count(3), 1);
  EXPECT_EQ(h.count(), 5);
  EXPECT_EQ(h.sum(), 83);
}

// ------------------------------------------------------- non-perturbation ----

TEST(TraceDeterminism, PartitionBitIdenticalWithTracingOnOffAcrossThreads) {
  const sparse::Csr a = sparse::stencil2d(16, 16);
  const model::FineGrainModel m = model::build_finegrain(a);

  for (idx_t threads : {1, 2, 8}) {
    part::PartitionConfig cfg;
    cfg.seed = 7;
    cfg.numThreads = threads;

    ASSERT_FALSE(trace::enabled());
    const part::HgResult off = part::partition_hypergraph(m.h, 8, cfg);

    std::vector<idx_t> onAssign;
    {
      TraceSandbox sandbox;
      const part::HgResult on = part::partition_hypergraph(m.h, 8, cfg);
      onAssign = on.partition.assignment();
      EXPECT_GT(trace::event_count(), 0u);
    }
    EXPECT_EQ(off.partition.assignment(), onAssign)
        << "tracing must not perturb the partition at " << threads << " threads";
  }
}

}  // namespace
}  // namespace fghp
