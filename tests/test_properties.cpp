// Metamorphic properties of the partitioning pipeline: transformations of
// the input with predictable effects on the output, checked end to end.
#include <gtest/gtest.h>

#include <set>

#include "comm/volume.hpp"
#include "hypergraph/builder.hpp"
#include "hypergraph/metrics.hpp"
#include "models/finegrain.hpp"
#include "partition/hg/partitioner.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"
#include "util/rng.hpp"

namespace fghp {
namespace {

hg::Hypergraph random_hg(idx_t numVerts, idx_t numNets, idx_t maxNetSize, std::uint64_t seed,
                         weight_t costScale = 1) {
  Rng rng(seed);
  hg::HypergraphBuilder b(numVerts);
  for (idx_t n = 0; n < numNets; ++n) {
    std::set<idx_t> pins;
    const idx_t size = rng.uniform(2, maxNetSize);
    while (static_cast<idx_t>(pins.size()) < size)
      pins.insert(rng.uniform(0, numVerts - 1));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv, rng.uniform(1, 3) * costScale);
  }
  return std::move(b).build();
}

TEST(Metamorphic, ScalingNetCostsScalesCutsize) {
  // Same structure, costs x5: every partition's cutsize scales by exactly 5,
  // so the partitioner's result (same seed) must too.
  const hg::Hypergraph h1 = random_hg(120, 90, 6, 1, 1);
  const hg::Hypergraph h5 = random_hg(120, 90, 6, 1, 5);
  part::PartitionConfig cfg;
  const part::HgResult r1 = part::partition_hypergraph(h1, 4, cfg);
  // Evaluate h1's partition on h5: cutsize must be exactly 5x.
  const hg::Partition p5(h5, 4, r1.partition.assignment());
  EXPECT_EQ(hg::cutsize(h5, p5, hg::CutMetric::kConnectivity), 5 * r1.cutsize);
}

TEST(Metamorphic, ScalingVertexWeightsPreservesBalance) {
  Rng rng(3);
  hg::HypergraphBuilder b(150);
  for (idx_t n = 0; n < 100; ++n) {
    std::set<idx_t> pins;
    while (pins.size() < 4) pins.insert(rng.uniform(0, 149));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv);
  }
  for (idx_t v = 0; v < 150; ++v) b.set_vertex_weight(v, 7 * rng.uniform(1, 3));
  const hg::Hypergraph h = std::move(b).build();
  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(h, 5, cfg);
  EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon));
}

TEST(Metamorphic, DisjointUnionPartitionsIndependently) {
  // Two structurally disconnected halves: a 2-way partition should find the
  // zero-cut split (each half is exactly half the weight).
  hg::HypergraphBuilder b(200);
  Rng rng(5);
  for (idx_t n = 0; n < 150; ++n) {
    const idx_t base = n % 2 == 0 ? 0 : 100;
    std::set<idx_t> pins;
    while (pins.size() < 3) pins.insert(base + rng.uniform(0, 99));
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv);
  }
  const hg::Hypergraph h = std::move(b).build();
  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(h, 2, cfg);
  EXPECT_EQ(r.cutsize, 0);
}

TEST(Metamorphic, MatrixTransposeSwapsExpandAndFold) {
  // Partition A's fine-grain hypergraph; the same nonzero assignment applied
  // to A^T swaps expand and fold exactly (the models are duals).
  const sparse::Csr a = sparse::random_square(120, 5, 7);
  const model::FineGrainModel m = model::build_finegrain(a);
  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(m.h, 6, cfg);
  const model::Decomposition d = model::decode_finegrain(a, m, r.partition);
  const comm::CommStats fwd = comm::analyze(a, d);

  // Build A^T's decomposition by symmetry: owner(a^T_ji) = owner(a_ij).
  const sparse::Csr at = sparse::transpose(a);
  model::Decomposition dt;
  dt.numProcs = d.numProcs;
  dt.xOwner = d.yOwner;
  dt.yOwner = d.xOwner;
  dt.nnzOwner.resize(d.nnzOwner.size());
  {
    std::vector<idx_t> cursor(static_cast<std::size_t>(at.num_rows()));
    for (idx_t j = 0; j < at.num_rows(); ++j)
      cursor[static_cast<std::size_t>(j)] = at.row_ptr()[static_cast<std::size_t>(j)];
    std::size_t e = 0;
    for (idx_t i = 0; i < a.num_rows(); ++i) {
      for (idx_t j : a.row_cols(i)) {
        dt.nnzOwner[static_cast<std::size_t>(cursor[static_cast<std::size_t>(j)]++)] =
            d.nnzOwner[e++];
      }
    }
  }
  const comm::CommStats bwd = comm::analyze(at, dt);
  EXPECT_EQ(fwd.expandWords, bwd.foldWords);
  EXPECT_EQ(fwd.foldWords, bwd.expandWords);
  EXPECT_EQ(fwd.totalWords, bwd.totalWords);
}

TEST(Metamorphic, AddingInternalNetsLeavesVolumeUnchanged) {
  // Append nets fully contained in one part: cutsize is unchanged.
  const hg::Hypergraph h = random_hg(100, 70, 5, 9);
  part::PartitionConfig cfg;
  const part::HgResult r = part::partition_hypergraph(h, 4, cfg);

  hg::HypergraphBuilder b(100);
  for (idx_t n = 0; n < h.num_nets(); ++n) {
    const auto pins = h.pins(n);
    std::vector<idx_t> pv(pins.begin(), pins.end());
    b.add_net(pv, h.net_cost(n));
  }
  // Ten new nets, each drawn from a single existing part.
  Rng rng(11);
  for (int extra = 0; extra < 10; ++extra) {
    const idx_t part = rng.uniform(0, 3);
    std::vector<idx_t> pv;
    for (idx_t v = 0; v < 100 && pv.size() < 3; ++v) {
      if (r.partition.part_of(v) == part && rng.bernoulli(0.3)) pv.push_back(v);
    }
    if (pv.size() >= 2) b.add_net(pv, 5);
  }
  const hg::Hypergraph h2 = std::move(b).build();
  const hg::Partition p2(h2, 4, r.partition.assignment());
  EXPECT_EQ(hg::cutsize(h2, p2, hg::CutMetric::kConnectivity), r.cutsize);
}

TEST(Metamorphic, BlockDiagonalMatrixSplitsForFree) {
  // B = diag(A, A) at K = 2: one block per processor is balanced with zero
  // communication, and the partitioner must find it.
  const sparse::Csr a = sparse::random_square(60, 4, 13);
  sparse::Coo coo(120, 120);
  for (idx_t i = 0; i < 60; ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      coo.add(i, cols[k], vals[k]);
      coo.add(i + 60, cols[k] + 60, vals[k]);
    }
  }
  const sparse::Csr b2 = to_csr(std::move(coo));
  part::PartitionConfig cfg;
  const model::ModelRun run = model::run_finegrain(b2, 2, cfg);
  EXPECT_EQ(comm::analyze(b2, run.decomp).totalWords, 0);
}

}  // namespace
}  // namespace fghp
