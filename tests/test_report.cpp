// Observability stack tests: the perf-counter gates (compiled-out /
// disabled / refused-open all degrade to zeroed samples with one warning and
// change no computed result), the executor's per-iteration histogram, the
// RunReport builder (phase analytics, modeled-vs-measured volume audit,
// JSON round-trip, rendering), and watchdog stall attribution to the
// worker's innermost active trace span.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "comm/volume.hpp"
#include "models/checkerboard.hpp"
#include "spmv/compiled.hpp"
#include "spmv/plan.hpp"
#include "sparse/testsuite.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/perf_counters.hpp"
#include "util/report.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace fghp {
namespace {

std::vector<double> random_x(idx_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform01() * 2.0 - 1.0;
  return x;
}

sparse::Csr small_matrix() { return sparse::make_matrix("sherman3", 1, 0.05); }

std::vector<long long> to_ll(const std::vector<weight_t>& v) {
  return {v.begin(), v.end()};
}

/// Restores the default observability state (tracing off, counters off and
/// un-probed, warning log drained) no matter how the test exits.
struct ObservabilityReset {
  ~ObservabilityReset() {
    trace::disable();
    trace::reset();
    perf::set_enabled(false);
    perf::reset_for_test();
    drain_warnings();
  }
};

// ------------------------------------------------------- perf gates ----

TEST(PerfGates, DisabledReadIsInvalidAndNeverProbes) {
  ObservabilityReset cleanup;
  perf::reset_for_test();
  perf::set_enabled(false);
  const perf::Sample s = perf::read_thread();
  EXPECT_FALSE(s.valid);
  EXPECT_EQ(s.cycles, 0);
  EXPECT_EQ(s.instructions, 0);
  EXPECT_EQ(s.llcMisses, 0);
  EXPECT_EQ(s.branchMisses, 0);
  // available() must not probe behind a disabled gate, so no warning either.
  EXPECT_FALSE(perf::available());
  EXPECT_TRUE(drain_warnings().empty());
}

TEST(PerfGates, RefusedOpenDegradesToZerosWithSingleWarning) {
  if (!perf::compiled_in()) GTEST_SKIP() << "built with FGHP_PERF=OFF";
  ObservabilityReset cleanup;
  drain_warnings();
  perf::reset_for_test();
  perf::set_enabled(true);
  // No ordinal: the open-attempt counter is process-wide, so the attempt
  // number this test sees depends on execution order.
  fault::ScopedSpec spec("perf.open");
  const perf::Sample s1 = perf::read_thread();
  const perf::Sample s2 = perf::read_thread();
  EXPECT_FALSE(s1.valid);
  EXPECT_FALSE(s2.valid);
  EXPECT_EQ(s1.cycles, 0);
  EXPECT_FALSE(perf::available());  // refusal is cached process-wide
  const std::vector<std::string> warnings = drain_warnings();
  ASSERT_EQ(warnings.size(), 1u) << "refusal must warn exactly once";
  EXPECT_NE(warnings[0].find("perf counters unavailable"), std::string::npos)
      << warnings[0];
}

TEST(PerfGates, CounterScopeIsNoopWhileDisabled) {
  ObservabilityReset cleanup;
  perf::set_enabled(false);
  const std::int64_t before = metrics::counter("perf.scope_test.cycles").value();
  { perf::CounterScope scope("scope_test"); }
  EXPECT_EQ(metrics::counter("perf.scope_test.cycles").value(), before);
}

TEST(PerfGates, DeltaRequiresBothSamplesValid) {
  perf::Sample a;
  a.valid = true;
  a.cycles = 10;
  a.instructions = 20;
  perf::Sample b;
  b.valid = true;
  b.cycles = 25;
  b.instructions = 60;
  const perf::Sample d = perf::delta(a, b);
  EXPECT_TRUE(d.valid);
  EXPECT_EQ(d.cycles, 15);
  EXPECT_EQ(d.instructions, 40);
  b.valid = false;
  EXPECT_FALSE(perf::delta(a, b).valid);
  EXPECT_FALSE(perf::delta(b, a).valid);
}

// --------------------------------------------- executor instrumentation ----

TEST(ExecMetrics, IterationHistogramCountsRunAndRunMt) {
  const sparse::Csr a = small_matrix();
  const model::Decomposition d = model::checkerboard_decompose_k(a, 4);
  spmv::ExecSession session(spmv::build_plan(a, d));
  const std::vector<double> x = random_x(a.num_cols(), 3);
  std::vector<double> y;
  // The session's constructor registered the histogram; {} never applies.
  metrics::Histogram& h = metrics::histogram("spmv.iteration.us", {});
  const std::int64_t c0 = h.count();
  session.run(x, y);
  EXPECT_EQ(h.count(), c0 + 1);
  session.run_mt(x, y, 2);
  EXPECT_EQ(h.count(), c0 + 2);
  session.run_mt(x, y, 1);  // serial fallback still counts one iteration
  EXPECT_EQ(h.count(), c0 + 3);
}

TEST(BitIdentity, CountedAndReportedRunsMatchPlainAcrossThreadCounts) {
  const sparse::Csr a = small_matrix();
  const model::Decomposition d = model::checkerboard_decompose_k(a, 4);
  const spmv::SpmvPlan plan = spmv::build_plan(a, d);
  const std::vector<double> x = random_x(a.num_cols(), 9);
  const std::vector<int> threadCounts = {1, 2, 8};

  std::vector<std::vector<double>> plain;
  {
    spmv::ExecSession session(plan);
    for (int t : threadCounts) {
      std::vector<double> y;
      session.run_mt(x, y, t);
      plain.push_back(y);
    }
    std::vector<double> y;
    session.run(x, y);
    plain.push_back(y);
  }

  // Same runs with the whole observability stack on: tracing, counters
  // (probing real hardware where the kernel allows, degrading to zeros
  // otherwise) and a report builder. Results must be bit-identical.
  ObservabilityReset cleanup;
  trace::enable();
  trace::reset();
  perf::reset_for_test();
  perf::set_enabled(true);
  report::Builder rep("test_report", "bit-identity");
  {
    spmv::ExecSession session(plan);
    std::size_t i = 0;
    for (int t : threadCounts) {
      std::vector<double> y;
      session.run_mt(x, y, t);
      EXPECT_EQ(y, plain[i++]) << "run_mt(" << t << ") diverged under observability";
    }
    std::vector<double> y;
    session.run(x, y);
    EXPECT_EQ(y, plain.back()) << "serial run diverged under observability";
  }
  const report::RunReport r = rep.build();
  EXPECT_EQ(r.status, "ok");
  EXPECT_FALSE(r.phases.empty());
}

// ----------------------------------------------------------- RunReport ----

TEST(RunReport, EndToEndAuditMatchesCommAnalyze) {
  const sparse::Csr a = small_matrix();
  const model::Decomposition d = model::checkerboard_decompose_k(a, 4);
  const comm::CommStats cs = comm::analyze(a, d);

  ObservabilityReset cleanup;
  trace::enable();
  trace::reset();
  report::Builder rep("test_report", "exec");
  rep.info("matrix", "sherman3");
  rep.info("k", 4);
  rep.expect_volume("spmv", cs.expandWords, cs.foldWords,
                    static_cast<long long>(cs.expandMessages) + cs.foldMessages);
  rep.set_proc_comm(to_ll(cs.sendWords), to_ll(cs.recvWords));

  spmv::ExecSession session(spmv::build_plan(a, d));
  const std::vector<double> x = random_x(a.num_cols(), 5);
  std::vector<double> y;
  const int reps = 4;
  for (int r = 0; r < reps; ++r) session.run_mt(x, y, 2);

  const report::RunReport r = rep.build();
  EXPECT_EQ(r.version, report::kRunReportVersion);
  EXPECT_EQ(r.status, "ok");
  EXPECT_TRUE(r.traceEnabled);
  EXPECT_GT(r.traceEvents, 0);
  EXPECT_GE(r.wallMs, 0.0);
  ASSERT_FALSE(r.phases.empty());
  for (const report::PhaseStat& p : r.phases) {
    EXPECT_GT(p.parallelEfficiency, 0.0) << p.name;
    EXPECT_LE(p.parallelEfficiency, 1.0) << p.name;
    EXPECT_GT(p.spans, 0) << p.name;
    EXPECT_GT(p.workers, 0) << p.name;
    EXPECT_GE(p.busyMs, p.criticalPathMs) << p.name;
  }
  ASSERT_FALSE(r.workers.empty());
  for (const report::WorkerStat& w : r.workers) {
    EXPECT_GT(w.utilization, 0.0);
    EXPECT_LE(w.utilization, 1.0);
  }

  // The paper's pricing, audited: the executor's measured word counters over
  // the run must equal comm::analyze's per-iteration totals times the
  // iteration count, exactly.
  ASSERT_TRUE(r.audit.present);
  EXPECT_EQ(r.audit.metricPrefix, "spmv");
  EXPECT_EQ(r.audit.iterations, reps);
  EXPECT_EQ(r.audit.measuredExpandWords, static_cast<long long>(cs.expandWords) * reps);
  EXPECT_EQ(r.audit.measuredFoldWords, static_cast<long long>(cs.foldWords) * reps);
  EXPECT_TRUE(r.audit.matches);

  ASSERT_TRUE(r.comm.present);
  long long total = 0;
  for (const weight_t w : cs.sendWords) total += w;
  EXPECT_EQ(r.comm.totalWords, total);
  EXPECT_EQ(r.comm.sendWords.size(), cs.sendWords.size());
}

TEST(RunReport, FailurePathReportsError) {
  report::Builder rep("test_report", "fail");
  rep.set_error("boom");
  const report::RunReport r = rep.build();
  EXPECT_EQ(r.status, "error");
  EXPECT_EQ(r.error, "boom");
}

TEST(RunReport, JsonRoundTrip) {
  report::Builder rep("test_report", "roundtrip");
  rep.info("k", 7);
  rep.expect_volume("spmv", 11, 13, 17);
  rep.set_proc_comm({3, 5}, {5, 3});
  const report::RunReport r = rep.build();
  std::ostringstream os;
  report::write_json(r, os);

  const report::jv::Value doc = report::jv::parse(os.str());
  EXPECT_EQ(doc.at("run_report_version").as_int(), report::kRunReportVersion);
  EXPECT_EQ(doc.at("tool").str, "test_report");
  EXPECT_EQ(doc.at("command").str, "roundtrip");
  EXPECT_EQ(doc.at("status").str, "ok");
  EXPECT_EQ(doc.at("info").at("k").str, "7");
  EXPECT_EQ(doc.at("perf").at("compiled_in").boolean, perf::compiled_in());
  const report::jv::Value& audit = doc.at("volume_audit");
  EXPECT_TRUE(audit.at("present").boolean);
  EXPECT_EQ(audit.at("modeled_expand_words").as_int(), 11);
  // No executor ran since the builder was created: 0 iterations, and the
  // audit holds trivially (0 == modeled * 0).
  EXPECT_EQ(audit.at("iterations").as_int(), 0);
  EXPECT_TRUE(audit.at("matches").boolean);
  const report::jv::Value& comm = doc.at("proc_comm");
  EXPECT_EQ(comm.at("total_words").as_int(), 8);
  EXPECT_EQ(comm.at("max_proc_words").as_int(), 8);
}

TEST(RunReport, WriteFileAndRenderFile) {
  report::Builder rep("test_report", "render");
  const std::string path = ::testing::TempDir() + "fghp_test_report.json";
  report::write_file(rep.build(), path);
  std::ostringstream out;
  report::render_file(path, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("RunReport v1: test_report render"), std::string::npos) << text;
  EXPECT_NE(text.find("volume audit: not armed"), std::string::npos) << text;
  EXPECT_NE(text.find("perf counters:"), std::string::npos) << text;
  std::remove(path.c_str());
}

TEST(RunReport, RenderFileRejectsMalformedJson) {
  const std::string path = ::testing::TempDir() + "fghp_test_report_bad.json";
  {
    std::ofstream f(path);
    f << "{ not json";
  }
  std::ostringstream out;
  EXPECT_THROW(report::render_file(path, out), FormatError);
  EXPECT_THROW(report::render_file(path + ".missing", out), IoError);
  std::remove(path.c_str());
}

// ------------------------------------------------ watchdog attribution ----

TEST(WatchdogAttribution, SimulatedStallNamesInnermostActiveSpan) {
  ThreadPool pool(2);
  trace::ActivityScope act("report.test.phase");
  fault::ScopedSpec spec("watchdog.stall:1");
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(pool.watchdog_scan(), 1);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("in span 'report.test.phase'"), std::string::npos) << err;
}

TEST(WatchdogAttribution, RealStallNamesWorkerSpan) {
  ThreadPool pool(2);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  ::testing::internal::CaptureStderr();
  TaskGroup group(pool);
  group.run([&] {
    trace::ActivityScope act("report.stuck.phase");
    started.store(true);
    while (!release.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });
  while (!started.load()) std::this_thread::yield();
  const std::int64_t before = metrics::counter("watchdog.stalls").value();
  pool.set_watchdog_ms(5);
  bool reported = false;
  for (int i = 0; i < 400 && !reported; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    pool.watchdog_scan();
    reported = metrics::counter("watchdog.stalls").value() > before;
  }
  release.store(true);
  group.wait();
  // The stall counter is bumped just before the stderr write; give the
  // reporting thread a beat to finish the write before uncapturing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_TRUE(reported) << "stalled task never reported";
  EXPECT_NE(err.find("in span 'report.stuck.phase'"), std::string::npos) << err;
}

}  // namespace
}  // namespace fghp
