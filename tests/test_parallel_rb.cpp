// Task-parallel recursive bisection: identical partitions at every thread
// count (DESIGN.md invariant 7), and balance + cut-net-splitting telescoping
// (invariants 4 and 2) at non-power-of-two K, where the llround side targets
// of recursive.cpp and the uniform-average cap of hg::is_balanced must agree.
//
// These tests force deep task forking (tiny minParallelVertices) and real
// worker threads (numThreads up to 8) — scripts/check.sh also runs them
// under ThreadSanitizer.
#include <gtest/gtest.h>

#include <vector>

#include "graph/gmetrics.hpp"
#include "hypergraph/metrics.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "partition/gp/gpartitioner.hpp"
#include "partition/gp/grecursive.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/hg/recursive.hpp"
#include "sparse/testsuite.hpp"
#include "util/cancel.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace fghp {
namespace {

part::PartitionConfig config_with_threads(idx_t threads) {
  part::PartitionConfig cfg;
  cfg.seed = 7;
  cfg.numThreads = threads;
  cfg.minParallelVertices = 32;  // fork aggressively so small instances cover the pool
  return cfg;
}

class ParallelRbTest : public ::testing::Test {
 protected:
  static const hg::Hypergraph& finegrain_hypergraph() {
    static const model::FineGrainModel m =
        model::build_finegrain(sparse::make_matrix("sherman3", 1, 0.3));
    return m.h;
  }
};

TEST_F(ParallelRbTest, HypergraphPartitionIdenticalAcrossThreadCounts) {
  const hg::Hypergraph& h = finegrain_hypergraph();
  std::vector<idx_t> reference;
  for (idx_t threads : {1, 2, 8}) {
    const part::PartitionConfig cfg = config_with_threads(threads);
    const part::HgResult r = part::partition_hypergraph(h, 16, cfg);
    if (reference.empty()) {
      reference = r.partition.assignment();
    } else {
      EXPECT_EQ(r.partition.assignment(), reference) << "threads=" << threads;
    }
  }
}

TEST_F(ParallelRbTest, RawRecursiveBisectionIdenticalAcrossThreadCounts) {
  const hg::Hypergraph& h = finegrain_hypergraph();
  std::vector<idx_t> reference;
  weight_t referenceCut = 0;
  for (idx_t threads : {1, 2, 8}) {
    const part::PartitionConfig cfg = config_with_threads(threads);
    Rng rng(cfg.seed);
    const part::hgrb::RecursiveResult rb = part::hgrb::partition_recursive(h, 16, cfg, rng);
    if (reference.empty()) {
      reference = rb.partition.assignment();
      referenceCut = rb.sumOfBisectionCuts;
    } else {
      EXPECT_EQ(rb.partition.assignment(), reference) << "threads=" << threads;
      EXPECT_EQ(rb.sumOfBisectionCuts, referenceCut) << "threads=" << threads;
    }
  }
}

TEST_F(ParallelRbTest, GraphPartitionIdenticalAcrossThreadCounts) {
  const gp::Graph g = model::build_standard_graph(sparse::make_matrix("sherman3", 1, 0.3));
  std::vector<idx_t> reference;
  for (idx_t threads : {1, 2, 8}) {
    const part::PartitionConfig cfg = config_with_threads(threads);
    const part::GpResult r = part::partition_graph(g, 16, cfg);
    if (reference.empty()) {
      reference = r.partition.assignment();
    } else {
      EXPECT_EQ(r.partition.assignment(), reference) << "threads=" << threads;
    }
  }
}

TEST_F(ParallelRbTest, OddKTelescopingAtEveryThreadCount) {
  const hg::Hypergraph& h = finegrain_hypergraph();
  for (idx_t K : {3, 5, 7}) {
    std::vector<idx_t> reference;
    for (idx_t threads : {1, 2, 4, 8}) {
      part::PartitionConfig cfg = config_with_threads(threads);
      cfg.seed = 3;
      Rng rng(cfg.seed);
      const part::hgrb::RecursiveResult rb =
          part::hgrb::partition_recursive(h, K, cfg, rng);
      ASSERT_TRUE(rb.partition.complete());
      // Invariant 2: per-level cut costs telescope to the K-way cutsize.
      EXPECT_EQ(rb.sumOfBisectionCuts,
                hg::cutsize(h, rb.partition, hg::CutMetric::kConnectivity))
          << "K=" << K << " threads=" << threads;
      if (reference.empty()) {
        reference = rb.partition.assignment();
      } else {
        EXPECT_EQ(rb.partition.assignment(), reference)
            << "K=" << K << " threads=" << threads;
      }
    }
  }
}

TEST_F(ParallelRbTest, OddKPartitionerOutputBalanced) {
  const hg::Hypergraph& h = finegrain_hypergraph();
  for (idx_t K : {3, 5, 7}) {
    for (idx_t threads : {1, 2, 4, 8}) {
      part::PartitionConfig cfg = config_with_threads(threads);
      cfg.seed = 11;
      const part::HgResult r = part::partition_hypergraph(h, K, cfg);
      // Invariant 4: the llround side targets and the uniform-average cap of
      // is_balanced must agree even when K does not split evenly.
      EXPECT_TRUE(hg::is_balanced(h, r.partition, cfg.epsilon))
          << "K=" << K << " threads=" << threads
          << " imbalance=" << hg::imbalance(h, r.partition);
    }
  }
}

TEST_F(ParallelRbTest, OddKGraphPartitionBalanced) {
  const gp::Graph g = model::build_standard_graph(sparse::make_matrix("sherman3", 1, 0.3));
  for (idx_t K : {3, 5, 7}) {
    const part::PartitionConfig cfg = config_with_threads(4);
    const part::GpResult r = part::partition_graph(g, K, cfg);
    EXPECT_LE(r.imbalance, cfg.epsilon + 1e-9) << "K=" << K;
  }
}

TEST_F(ParallelRbTest, GenerousDeadlineBitIdenticalToNoDeadline) {
  // An active-but-ample deadline must not perturb a single decision: the
  // ladder only changes behavior once remaining budget actually runs short.
  const hg::Hypergraph& h = finegrain_hypergraph();
  const part::PartitionConfig plain = config_with_threads(1);
  const part::HgResult ref = part::partition_hypergraph(h, 16, plain);
  for (idx_t threads : {1, 2, 8}) {
    part::PartitionConfig cfg = config_with_threads(threads);
    cfg.cancel = cancel::CancelToken::with_deadline_ms(3'600'000);  // one hour
    const part::HgResult r = part::partition_hypergraph(h, 16, cfg);
    EXPECT_EQ(r.partition.assignment(), ref.partition.assignment())
        << "threads=" << threads;
    EXPECT_EQ(r.numDegraded, 0) << "threads=" << threads;
  }
}

TEST_F(ParallelRbTest, InjectedCancelSameTypedErrorAtEveryThreadCount) {
  // A simulated cancellation at a fixed RB node must surface as the same
  // typed error at any thread count — the ordinal identifies the logical
  // node, not a scheduling accident, and the fork-join rethrow (possibly via
  // AggregateError) must preserve the code and the phase context.
  const hg::Hypergraph& h = finegrain_hypergraph();
  for (idx_t threads : {1, 2, 8}) {
    part::PartitionConfig cfg = config_with_threads(threads);
    cfg.faultSpec = "cancel.rb.node:3";
    try {
      part::partition_hypergraph(h, 16, cfg);
      FAIL() << "expected CancelledError at threads=" << threads;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled) << "threads=" << threads;
      EXPECT_EQ(e.context().phase, "rb.node") << "threads=" << threads;
    }
    drain_warnings();
  }
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  parallel_for(pool, 257, [&](long i) { hits[static_cast<std::size_t>(i)] += 1; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedGroupsDoNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  // A fork-join tree 6 levels deep on a 2-thread pool: waiting tasks must
  // help execute queued work or this would deadlock.
  std::function<void(int)> tree = [&](int depth) {
    if (depth == 0) {
      leaves += 1;
      return;
    }
    TaskGroup group(pool);
    group.run([&, depth] { tree(depth - 1); });
    tree(depth - 1);
    group.wait();
  };
  tree(6);
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPoolTest, TaskExceptionPropagatesFromWait) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsTasksInWait) {
  ThreadPool pool(1);  // no workers: the waiting thread must drain the queue
  std::atomic<int> ran{0};
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) group.run([&] { ran += 1; });
  group.wait();
  EXPECT_EQ(ran.load(), 8);
}

}  // namespace
}  // namespace fghp
