// Typed error hierarchy: codes, context decoration, exit-code mapping,
// aggregation, and the process-global warning log.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace fghp {
namespace {

TEST(Error, EveryCategoryKeepsItsCode) {
  EXPECT_EQ(IoError("x").code(), ErrorCode::kIo);
  EXPECT_EQ(FormatError("x").code(), ErrorCode::kFormat);
  EXPECT_EQ(InvariantError("x").code(), ErrorCode::kInvariant);
  EXPECT_EQ(InfeasibleError("x").code(), ErrorCode::kInfeasible);
  EXPECT_EQ(FaultError("x").code(), ErrorCode::kFault);
  EXPECT_EQ(CancelledError("x").code(), ErrorCode::kCancelled);
  EXPECT_EQ(DeadlineExceededError("x").code(), ErrorCode::kDeadline);
}

TEST(Error, DerivesFromRuntimeError) {
  // Pre-existing catch (const std::runtime_error&) handlers must keep
  // working for every category.
  EXPECT_THROW(throw FormatError("bad"), std::runtime_error);
  EXPECT_THROW(throw IoError("bad"), std::runtime_error);
  EXPECT_THROW(throw FaultError("bad"), Error);
}

TEST(Error, ContextDecoratesMessage) {
  ErrorContext ctx;
  ctx.path = "m.mtx";
  ctx.line = 12;
  const FormatError e("value is not a number", ctx);
  const std::string what = e.what();
  EXPECT_NE(what.find("value is not a number"), std::string::npos);
  EXPECT_NE(what.find("m.mtx"), std::string::npos);
  EXPECT_NE(what.find("line 12"), std::string::npos);
  EXPECT_EQ(e.context().path, "m.mtx");
  EXPECT_EQ(e.context().line, 12);
}

TEST(Error, EmptyContextAddsNothing) {
  const IoError e("cannot open");
  EXPECT_STREQ(e.what(), "cannot open");
}

TEST(Error, PhaseAndPartDecorate) {
  ErrorContext ctx;
  ctx.phase = "rb.bisect";
  ctx.part = 3;
  const std::string what = FaultError("injected fault", ctx).what();
  EXPECT_NE(what.find("rb.bisect"), std::string::npos);
  EXPECT_NE(what.find('3'), std::string::npos);
}

TEST(Error, ExitCodeMapping) {
  EXPECT_EQ(exit_code(IoError("x")), 3);
  EXPECT_EQ(exit_code(FormatError("x")), 4);
  EXPECT_EQ(exit_code(InvariantError("x")), 5);
  EXPECT_EQ(exit_code(InfeasibleError("x")), 6);
  EXPECT_EQ(exit_code(FaultError("x")), 7);
  EXPECT_EQ(exit_code(CancelledError("x")), 8);
  EXPECT_EQ(exit_code(DeadlineExceededError("x")), 9);
  EXPECT_EQ(exit_code(std::invalid_argument("bad arg")), 2);  // FGHP_REQUIRE
  EXPECT_EQ(exit_code(std::runtime_error("anything")), 1);
}

TEST(Error, CodeNames) {
  EXPECT_STREQ(error_code_name(ErrorCode::kIo), "io");
  EXPECT_STREQ(error_code_name(ErrorCode::kFormat), "format");
  EXPECT_STREQ(error_code_name(ErrorCode::kInvariant), "invariant");
  EXPECT_STREQ(error_code_name(ErrorCode::kInfeasible), "infeasible");
  EXPECT_STREQ(error_code_name(ErrorCode::kFault), "fault");
  EXPECT_STREQ(error_code_name(ErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadline), "deadline");
}

template <typename E>
std::exception_ptr wrap(const E& e) {
  return std::make_exception_ptr(e);  // template: no slicing to the base
}

TEST(AggregateError, KeepsEveryError) {
  std::vector<std::exception_ptr> errs{wrap(IoError("first")), wrap(IoError("second"))};
  const AggregateError agg(std::move(errs));
  EXPECT_EQ(agg.size(), 2u);
  const std::string what = agg.what();
  EXPECT_NE(what.find("first"), std::string::npos);
  EXPECT_NE(what.find("second"), std::string::npos);
}

TEST(AggregateError, CommonCategoryIsPreserved) {
  const AggregateError same({wrap(FaultError("a")), wrap(FaultError("b"))});
  EXPECT_EQ(same.code(), ErrorCode::kFault);
  const AggregateError mixed({wrap(FaultError("a")), wrap(IoError("b"))});
  EXPECT_EQ(mixed.code(), ErrorCode::kGeneric);
}

TEST(AggregateError, AdoptsFirstContainedContext) {
  // A typed error crossing the fork-join boundary must keep its phase/part
  // context: the rb_driver rethrows worker errors through TaskGroup::wait,
  // and "which phase cancelled" is the whole point of the typed errors.
  ErrorContext ctx;
  ctx.phase = "rb.node";
  ctx.part = 7;
  const AggregateError agg(
      {wrap(CancelledError("run cancelled", ctx)), wrap(CancelledError("later"))});
  EXPECT_EQ(agg.code(), ErrorCode::kCancelled);
  EXPECT_EQ(agg.context().phase, "rb.node");
  EXPECT_EQ(agg.context().part, 7);
  const std::string what = agg.what();
  EXPECT_NE(what.find("rb.node"), std::string::npos);
}

TEST(AggregateError, NonErrorMembersLeaveContextEmpty) {
  const AggregateError agg({std::make_exception_ptr(std::runtime_error("plain"))});
  EXPECT_TRUE(agg.context().phase.empty());
}

TEST(Warnings, PushDrainCount) {
  drain_warnings();  // clear any leftovers from other tests
  EXPECT_EQ(warning_count(), 0u);
  push_warning("degraded once");
  push_warning("degraded twice");
  EXPECT_EQ(warning_count(), 2u);
  const auto got = drain_warnings();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], "degraded once");
  EXPECT_EQ(got[1], "degraded twice");
  EXPECT_EQ(warning_count(), 0u);
}

TEST(Warnings, ConcurrentPushesAllLand) {
  drain_warnings();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kPerThread; ++i)
        push_warning("t" + std::to_string(t) + "#" + std::to_string(i));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(drain_warnings().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace fghp
