// Characterization ("golden") tests for the recursive-bisection stacks.
//
// These pin the exact partitions produced by the hypergraph and graph
// multilevel engines for fixed (generator matrix, seed, K, config), as an
// FNV-1a hash of the assignment vector plus the cutsize, at 1, 2 and 8
// threads. They are the safety net for refactors of the RB orchestration:
// any change to the traversal order, RNG stream derivation, recovery ladder
// or extraction logic shows up as a hash mismatch here.
//
// Regenerating: FGHP_GOLDEN_PRINT=1 ./test_rb_golden prints the current
// signatures in the exact table form below. Only paste new values when an
// output change is *intended* — this file exists to make silent drift loud.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/gmetrics.hpp"
#include "hypergraph/metrics.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "partition/gp/gpartitioner.hpp"
#include "partition/gp/grecursive.hpp"
#include "partition/hg/partitioner.hpp"
#include "partition/hg/recursive.hpp"
#include "sparse/generators.hpp"
#include "util/options.hpp"
#include "util/rng.hpp"

namespace fghp {
namespace {

std::uint64_t fnv1a(const std::vector<idx_t>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (idx_t x : v) {
    auto u = static_cast<std::uint64_t>(x);
    for (int b = 0; b < 8; ++b) {
      h ^= (u >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

/// Signature of one partitioner run: assignment hash + objective value.
struct Sig {
  std::uint64_t hash = 0;
  long long cut = 0;

  bool operator==(const Sig&) const = default;
};

part::PartitionConfig golden_config(idx_t threads) {
  part::PartitionConfig cfg;
  cfg.seed = 42;
  cfg.numThreads = threads;
  // Low enough that the fork-join path is exercised on the small golden
  // instances, so the thread sweep actually schedules tasks.
  cfg.minParallelVertices = 64;
  return cfg;
}

// The two generator instances the goldens are pinned on: a structured mesh
// and an irregular random pattern. Deterministic in their parameters.
sparse::Csr mesh_matrix() { return sparse::stencil2d(20, 20); }
sparse::Csr irregular_matrix() { return sparse::random_square(250, 5, 13); }

Sig run_hg_rb(const sparse::Csr& a, idx_t K, idx_t threads) {
  const model::FineGrainModel m = model::build_finegrain(a);
  const part::PartitionConfig cfg = golden_config(threads);
  Rng rng(cfg.seed);
  const part::hgrb::RecursiveResult r = part::hgrb::partition_recursive(m.h, K, cfg, rng);
  return {fnv1a(r.partition.assignment()), static_cast<long long>(r.sumOfBisectionCuts)};
}

Sig run_gp_rb(const sparse::Csr& a, idx_t K, idx_t threads) {
  const gp::Graph g = model::build_standard_graph(a);
  const part::PartitionConfig cfg = golden_config(threads);
  Rng rng(cfg.seed);
  const part::gprb::GRecursiveResult r = part::gprb::partition_graph_recursive(g, K, cfg, rng);
  return {fnv1a(r.partition.assignment()), static_cast<long long>(r.sumOfBisectionCuts)};
}

Sig run_hg_facade(const sparse::Csr& a, idx_t K, idx_t threads) {
  const model::FineGrainModel m = model::build_finegrain(a);
  const part::HgResult r = part::partition_hypergraph(m.h, K, golden_config(threads));
  return {fnv1a(r.partition.assignment()), static_cast<long long>(r.cutsize)};
}

Sig run_gp_facade(const sparse::Csr& a, idx_t K, idx_t threads) {
  const gp::Graph g = model::build_standard_graph(a);
  const part::GpResult r = part::partition_graph(g, K, golden_config(threads));
  return {fnv1a(r.partition.assignment()), static_cast<long long>(r.edgeCut)};
}

struct Case {
  const char* engine;  // "hg.rb", "gp.rb", "hg.part", "gp.part"
  const char* matrix;  // "mesh", "irregular"
  idx_t K;
  Sig expected;        // at every thread count (thread-count independence)
};

// Golden signatures captured from the pre-unification stacks (PR 2 state);
// the unified engine must reproduce them bit-identically.
const Case kGolden[] = {
    {"hg.rb", "mesh", 4, {0xbd4997befafc43c2ULL, 77}},
    {"hg.rb", "mesh", 8, {0x590f9b2cf4bc0266ULL, 157}},
    {"hg.rb", "irregular", 4, {0x3524b624bd83cd81ULL, 251}},
    {"hg.rb", "irregular", 8, {0x62483d94beb3ae24ULL, 379}},
    {"gp.rb", "mesh", 4, {0x9f6b343a55339100ULL, 86}},
    {"gp.rb", "mesh", 8, {0xf927a62b0de53fe7ULL, 176}},
    {"gp.rb", "irregular", 4, {0x845c400907ac7862ULL, 416}},
    {"gp.rb", "irregular", 8, {0x8d485eeda0070be1ULL, 546}},
    {"hg.part", "mesh", 4, {0xbd4997befafc43c2ULL, 77}},
    {"hg.part", "mesh", 8, {0xdeb278007a3a5dc5ULL, 154}},
    {"hg.part", "irregular", 4, {0x7e6e470547c66841ULL, 249}},
    {"hg.part", "irregular", 8, {0x741e371ed389a664ULL, 377}},
    {"gp.part", "mesh", 4, {0x6a1395e9c234ed23ULL, 84}},
    {"gp.part", "mesh", 8, {0x09caaa2e3a37bce5ULL, 172}},
    {"gp.part", "irregular", 4, {0x17ed08dc9fc584a0ULL, 414}},
    {"gp.part", "irregular", 8, {0x27ff2bda60b49b62ULL, 545}},
};

Sig run_case(const Case& c, idx_t threads) {
  const sparse::Csr a =
      std::string(c.matrix) == "mesh" ? mesh_matrix() : irregular_matrix();
  const std::string engine = c.engine;
  if (engine == "hg.rb") return run_hg_rb(a, c.K, threads);
  if (engine == "gp.rb") return run_gp_rb(a, c.K, threads);
  if (engine == "hg.part") return run_hg_facade(a, c.K, threads);
  return run_gp_facade(a, c.K, threads);
}

TEST(RbGolden, PrintCurrentSignatures) {
  if (!env_flag("FGHP_GOLDEN_PRINT")) GTEST_SKIP() << "set FGHP_GOLDEN_PRINT=1 to print";
  for (const Case& c : kGolden) {
    const Sig s = run_case(c, 1);
    std::printf("    {\"%s\", \"%s\", %d, {0x%016llxULL, %lld}},\n", c.engine, c.matrix,
                static_cast<int>(c.K), static_cast<unsigned long long>(s.hash), s.cut);
  }
}

class RbGoldenSweep : public ::testing::TestWithParam<idx_t> {};

TEST_P(RbGoldenSweep, PinnedAtEveryThreadCount) {
  const idx_t threads = GetParam();
  for (const Case& c : kGolden) {
    const Sig s = run_case(c, threads);
    EXPECT_EQ(s.hash, c.expected.hash)
        << c.engine << " " << c.matrix << " K=" << c.K << " threads=" << threads;
    EXPECT_EQ(s.cut, c.expected.cut)
        << c.engine << " " << c.matrix << " K=" << c.K << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RbGoldenSweep, ::testing::Values(1, 2, 8));

}  // namespace
}  // namespace fghp
