// Unit tests for util: rng, bucket queue, sparse accumulator, table,
// options.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <set>

#include "util/bucket_queue.hpp"
#include "util/error.hpp"
#include "util/options.hpp"
#include "util/thread_pool.hpp"
#include "util/rng.hpp"
#include "util/sparse_acc.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace fghp {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, UniformCoversInclusiveRange) {
  Rng rng(5);
  std::set<idx_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const idx_t v = rng.uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InUnitInterval) {
  Rng rng(11);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double u = rng.uniform01();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(17);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(19);
  const auto perm = rng.permutation(257);
  std::vector<idx_t> sorted(perm);
  std::sort(sorted.begin(), sorted.end());
  for (idx_t i = 0; i < 257; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, PermutationZeroAndOne) {
  Rng rng(23);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto one = rng.permutation(1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], 0);
}

TEST(Rng, ShuffleKeepsMultiset) {
  Rng rng(29);
  std::vector<int> v{5, 5, 1, 2, 3, 9};
  auto sortedBefore = v;
  std::sort(sortedBefore.begin(), sortedBefore.end());
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sortedBefore);
}

TEST(Rng, SpawnProducesIndependentStream) {
  Rng a(31);
  Rng child = a.spawn();
  // Child should not replay the parent's continuation.
  Rng b(31);
  b.spawn();
  EXPECT_EQ(child.next() != a.next() || child.next() != a.next(), true);
}

// ------------------------------------------------------- BucketQueue ----

TEST(BucketQueue, PushPopSingle) {
  BucketQueue q(10, 5);
  EXPECT_TRUE(q.empty());
  q.push(3, 2);
  EXPECT_FALSE(q.empty());
  EXPECT_TRUE(q.contains(3));
  EXPECT_EQ(q.max_gain(), 2);
  EXPECT_EQ(q.pop_max(), 3);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(3));
}

TEST(BucketQueue, PopsHighestGainFirst) {
  BucketQueue q(10, 10);
  q.push(0, -3);
  q.push(1, 7);
  q.push(2, 0);
  q.push(3, 7);
  const idx_t first = q.pop_max();
  EXPECT_TRUE(first == 1 || first == 3);
  const idx_t second = q.pop_max();
  EXPECT_TRUE(second == 1 || second == 3);
  EXPECT_NE(first, second);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, LifoWithinBucket) {
  BucketQueue q(10, 4);
  q.push(5, 1);
  q.push(6, 1);
  q.push(7, 1);
  EXPECT_EQ(q.pop_max(), 7);  // most recently pushed first
  EXPECT_EQ(q.pop_max(), 6);
  EXPECT_EQ(q.pop_max(), 5);
}

TEST(BucketQueue, UpdateMovesBuckets) {
  BucketQueue q(4, 8);
  q.push(0, 1);
  q.push(1, 2);
  q.update(0, 5);
  EXPECT_EQ(q.gain(0), 5);
  EXPECT_EQ(q.pop_max(), 0);
  EXPECT_EQ(q.pop_max(), 1);
}

TEST(BucketQueue, AdjustDelta) {
  BucketQueue q(4, 8);
  q.push(2, -1);
  q.adjust(2, 3);
  EXPECT_EQ(q.gain(2), 2);
  q.adjust(2, -4);
  EXPECT_EQ(q.gain(2), -2);
}

TEST(BucketQueue, RemoveMiddleOfBucket) {
  BucketQueue q(8, 3);
  q.push(0, 0);
  q.push(1, 0);
  q.push(2, 0);
  q.remove(1);
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, NegativeGainsOnly) {
  BucketQueue q(4, 6);
  q.push(0, -6);
  q.push(1, -2);
  EXPECT_EQ(q.max_gain(), -2);
  EXPECT_EQ(q.pop_max(), 1);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, ClearKeepsCapacity) {
  BucketQueue q(4, 4);
  q.push(0, 4);
  q.push(1, -4);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(2, 0);
  EXPECT_EQ(q.pop_max(), 2);
}

TEST(BucketQueue, StressAgainstMultiset) {
  Rng rng(37);
  const idx_t n = 200, g = 20;
  BucketQueue q(n, g);
  std::vector<idx_t> gains(n, 0);
  std::vector<bool> in(n, false);
  std::multiset<idx_t> model;
  for (int step = 0; step < 5000; ++step) {
    const idx_t v = rng.uniform(0, n - 1);
    const int op = static_cast<int>(rng.uniform(0, 3));
    if (op == 0 && !in[static_cast<std::size_t>(v)]) {
      const idx_t gain = rng.uniform(-g, g);
      q.push(v, gain);
      gains[static_cast<std::size_t>(v)] = gain;
      in[static_cast<std::size_t>(v)] = true;
      model.insert(gain);
    } else if (op == 1 && in[static_cast<std::size_t>(v)]) {
      q.remove(v);
      model.erase(model.find(gains[static_cast<std::size_t>(v)]));
      in[static_cast<std::size_t>(v)] = false;
    } else if (op == 2 && in[static_cast<std::size_t>(v)]) {
      const idx_t gain = rng.uniform(-g, g);
      model.erase(model.find(gains[static_cast<std::size_t>(v)]));
      q.update(v, gain);
      gains[static_cast<std::size_t>(v)] = gain;
      model.insert(gain);
    } else if (!q.empty()) {
      EXPECT_EQ(q.max_gain(), *model.rbegin());
      const idx_t popped = q.pop_max();
      EXPECT_EQ(gains[static_cast<std::size_t>(popped)], *model.rbegin());
      model.erase(std::prev(model.end()));
      in[static_cast<std::size_t>(popped)] = false;
    }
    EXPECT_EQ(static_cast<std::size_t>(q.size()), model.size());
  }
}

TEST(BucketQueue, GainsAtTheBounds) {
  BucketQueue q(4, 7);
  q.push(0, 7);
  q.push(1, -7);
  EXPECT_EQ(q.max_gain(), 7);
  EXPECT_EQ(q.pop_max(), 0);
  EXPECT_EQ(q.max_gain(), -7);
  EXPECT_EQ(q.pop_max(), 1);
}

TEST(BucketQueue, ResetRedimensions) {
  BucketQueue q(2, 1);
  q.push(0, 1);
  q.reset(6, 10);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(0));
  q.push(5, 10);
  q.push(4, -10);
  EXPECT_EQ(q.pop_max(), 5);
  EXPECT_EQ(q.pop_max(), 4);
}

TEST(BucketQueue, UpdateToSameGainIsNoOp) {
  BucketQueue q(3, 4);
  q.push(0, 2);
  q.push(1, 2);
  q.update(1, 2);  // same gain: must keep LIFO position
  EXPECT_EQ(q.pop_max(), 1);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueue, SizeTracksPushesAndPops) {
  BucketQueue q(8, 3);
  EXPECT_EQ(q.size(), 0);
  for (idx_t v = 0; v < 8; ++v) q.push(v, static_cast<idx_t>(v % 3));
  EXPECT_EQ(q.size(), 8);
  q.remove(3);
  q.pop_max();
  EXPECT_EQ(q.size(), 6);
}

// -------------------------------------------------- SparseAccumulator ----

TEST(SparseAccumulator, AccumulatesAndClears) {
  SparseAccumulator<weight_t> acc(10);
  acc.add(3, 2);
  acc.add(3, 5);
  acc.add(7, 1);
  EXPECT_EQ(acc.value(3), 7);
  EXPECT_EQ(acc.value(7), 1);
  EXPECT_EQ(acc.value(0), 0);
  EXPECT_TRUE(acc.touched(3));
  EXPECT_FALSE(acc.touched(0));
  EXPECT_EQ(acc.keys().size(), 2u);
  acc.clear();
  EXPECT_TRUE(acc.keys().empty());
  EXPECT_EQ(acc.value(3), 0);
}

TEST(SparseAccumulator, StaleValuesInvisibleAfterClear) {
  SparseAccumulator<double> acc(4);
  acc.add(1, 3.5);
  acc.clear();
  acc.add(1, 1.0);
  EXPECT_DOUBLE_EQ(acc.value(1), 1.0);
}

TEST(SparseAccumulator, KeysInFirstTouchOrder) {
  SparseAccumulator<idx_t> acc(10);
  acc.add(5, 1);
  acc.add(2, 1);
  acc.add(5, 1);
  acc.add(9, 1);
  EXPECT_EQ(acc.keys(), (std::vector<idx_t>{5, 2, 9}));
}

// --------------------------------------------------------------- Table ----

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  // Every line has the same width.
  std::size_t firstLen = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, firstLen);
    pos = next + 1;
  }
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(0.5, 0), "0");  // rounds to even via printf
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

// ------------------------------------------------------------- Options ----

TEST(Options, EnvLongFallbackAndParse) {
  ::unsetenv("FGHP_TEST_ENV");
  EXPECT_EQ(env_long("FGHP_TEST_ENV", 7), 7);
  ::setenv("FGHP_TEST_ENV", "42", 1);
  EXPECT_EQ(env_long("FGHP_TEST_ENV", 7), 42);
  ::setenv("FGHP_TEST_ENV", "abc", 1);
  EXPECT_THROW(env_long("FGHP_TEST_ENV", 7), std::invalid_argument);
  ::unsetenv("FGHP_TEST_ENV");
}

TEST(Options, EnvFlagSemantics) {
  ::unsetenv("FGHP_TEST_FLAG");
  EXPECT_FALSE(env_flag("FGHP_TEST_FLAG"));
  EXPECT_TRUE(env_flag("FGHP_TEST_FLAG", true));
  ::setenv("FGHP_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("FGHP_TEST_FLAG", true));
  ::setenv("FGHP_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("FGHP_TEST_FLAG"));
  ::unsetenv("FGHP_TEST_FLAG");
}

TEST(Options, EnvListSplitsAndTrims) {
  ::setenv("FGHP_TEST_LIST", " a, b ,,c ", 1);
  EXPECT_EQ(env_list("FGHP_TEST_LIST"), (std::vector<std::string>{"a", "b", "c"}));
  ::unsetenv("FGHP_TEST_LIST");
  EXPECT_TRUE(env_list("FGHP_TEST_LIST").empty());
}

TEST(Options, ArgParserFlagsAndPositionals) {
  const char* argv[] = {"prog", "--k", "16", "--eps=0.05", "matrix.mtx", "--verbose"};
  ArgParser args(6, const_cast<char**>(argv));
  EXPECT_EQ(args.flag("k").value(), "16");
  EXPECT_EQ(args.flag_long("k", 0), 16);
  EXPECT_EQ(args.flag("eps").value(), "0.05");
  EXPECT_FALSE(args.flag("missing").has_value());
  EXPECT_TRUE(args.has_switch("verbose"));
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "matrix.mtx");
}

// --------------------------------------------------------------- Timer ----

TEST(Timer, MonotoneNonNegative) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, AccumulatorMean) {
  Accumulator acc;
  acc.add(1.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.total(), 4.0);
  EXPECT_EQ(acc.count(), 2);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
}

// ----------------------------------------------- TaskGroup exceptions ----

TEST(TaskGroup, SingleExceptionRethrownUnchanged) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  group.run([] { throw IoError("the one failure"); });
  try {
    group.wait();
    FAIL() << "expected throw";
  } catch (const IoError& e) {
    // Not wrapped in an AggregateError: the original type survives.
    EXPECT_NE(std::string(e.what()).find("the one failure"), std::string::npos);
  }
}

TEST(TaskGroup, ConcurrentFailuresAllAggregated) {
  ThreadPool pool(4);
  TaskGroup group(pool);
  constexpr int kFailures = 6;
  for (int i = 0; i < kFailures; ++i) {
    group.run([i] { throw FaultError("task " + std::to_string(i) + " died"); });
  }
  try {
    group.wait();
    FAIL() << "expected throw";
  } catch (const AggregateError& e) {
    EXPECT_EQ(e.size(), static_cast<std::size_t>(kFailures));
    EXPECT_EQ(e.code(), ErrorCode::kFault);  // all the same category
    const std::string what = e.what();
    for (int i = 0; i < kFailures; ++i) {
      EXPECT_NE(what.find("task " + std::to_string(i) + " died"), std::string::npos)
          << what;
    }
  }
}

TEST(TaskGroup, MixedCategoriesAggregateToGeneric) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw IoError("io went wrong"); });
  group.run([] { throw FormatError("format went wrong"); });
  try {
    group.wait();
    FAIL() << "expected throw";
  } catch (const AggregateError& e) {
    EXPECT_EQ(e.size(), 2u);
    EXPECT_EQ(e.code(), ErrorCode::kGeneric);
  }
}

TEST(TaskGroup, SuccessfulTasksUnaffectedByFailedSiblings) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([&done] { done.fetch_add(1); });
  }
  group.run([] { throw InvariantError("sibling failure"); });
  EXPECT_THROW(group.wait(), InvariantError);
  EXPECT_EQ(done.load(), 8);
}

TEST(TaskGroup, ReusableAfterFailure) {
  ThreadPool pool(2);
  TaskGroup group(pool);
  group.run([] { throw IoError("first round"); });
  EXPECT_THROW(group.wait(), IoError);
  std::atomic<int> ran{0};
  group.run([&ran] { ran.fetch_add(1); });
  EXPECT_NO_THROW(group.wait());  // error list was swapped out, not sticky
  EXPECT_EQ(ran.load(), 1);
}

}  // namespace
}  // namespace fghp
