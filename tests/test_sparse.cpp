// Unit tests for the sparse substrate: COO, CSR, conversions, transpose,
// statistics.
#include <gtest/gtest.h>

#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"
#include "util/rng.hpp"

namespace fghp::sparse {
namespace {

Csr small_example() {
  // [ 1 0 2 ]
  // [ 0 3 0 ]
  // [ 4 0 5 ]
  Coo coo(3, 3);
  coo.add(0, 0, 1);
  coo.add(0, 2, 2);
  coo.add(1, 1, 3);
  coo.add(2, 0, 4);
  coo.add(2, 2, 5);
  return to_csr(std::move(coo));
}

// ----------------------------------------------------------------- Coo ----

TEST(Coo, NormalizeSortsAndMergesDuplicates) {
  Coo coo(3, 3);
  coo.add(2, 1, 1.0);
  coo.add(0, 0, 2.0);
  coo.add(2, 1, 3.0);
  coo.add(0, 2, 1.0);
  coo.normalize();
  EXPECT_TRUE(coo.is_normalized());
  ASSERT_EQ(coo.nnz(), 3);
  EXPECT_EQ(coo.entries()[0], (Triplet{0, 0, 2.0}));
  EXPECT_EQ(coo.entries()[1], (Triplet{0, 2, 1.0}));
  EXPECT_EQ(coo.entries()[2], (Triplet{2, 1, 4.0}));
}

TEST(Coo, NormalizeKeepsStructuralZeros) {
  Coo coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(0, 1, -1.0);
  coo.normalize();
  ASSERT_EQ(coo.nnz(), 1);  // value 0.0 but structurally present
  EXPECT_DOUBLE_EQ(coo.entries()[0].value, 0.0);
}

TEST(Coo, SymmetrizeMirrorsOffDiagonals) {
  Coo coo(3, 3);
  coo.add(0, 1, 2.0);
  coo.add(1, 1, 5.0);
  coo.symmetrize();
  coo.normalize();
  EXPECT_EQ(coo.nnz(), 3);  // (0,1), (1,0), (1,1)
  const Csr a = to_csr(std::move(coo));
  EXPECT_TRUE(a.has_entry(1, 0));
  EXPECT_DOUBLE_EQ(a.row_vals(1)[0], 2.0);
}

TEST(Coo, SymmetrizeRequiresSquare) {
  Coo coo(2, 3);
  EXPECT_THROW(coo.symmetrize(), std::invalid_argument);
}

// ----------------------------------------------------------------- Csr ----

TEST(Csr, BasicAccessors) {
  const Csr a = small_example();
  EXPECT_EQ(a.num_rows(), 3);
  EXPECT_EQ(a.num_cols(), 3);
  EXPECT_EQ(a.nnz(), 5);
  EXPECT_TRUE(a.is_square());
  EXPECT_EQ(a.row_size(0), 2);
  EXPECT_EQ(a.row_size(1), 1);
  ASSERT_EQ(a.row_cols(2).size(), 2u);
  EXPECT_EQ(a.row_cols(2)[0], 0);
  EXPECT_EQ(a.row_cols(2)[1], 2);
  EXPECT_DOUBLE_EQ(a.row_vals(2)[1], 5.0);
}

TEST(Csr, HasEntry) {
  const Csr a = small_example();
  EXPECT_TRUE(a.has_entry(0, 2));
  EXPECT_FALSE(a.has_entry(0, 1));
  EXPECT_FALSE(a.has_entry(2, 1));
}

TEST(Csr, NumDiagEntries) {
  const Csr a = small_example();
  EXPECT_EQ(a.num_diag_entries(), 3);
  Coo coo(2, 2);
  coo.add(0, 1, 1.0);
  EXPECT_EQ(to_csr(std::move(coo)).num_diag_entries(), 0);
}

TEST(Csr, RejectsMalformedArrays) {
  EXPECT_THROW(Csr(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);      // short rowPtr
  EXPECT_THROW(Csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}), std::invalid_argument);  // non-monotone
  EXPECT_THROW(Csr(1, 1, {0, 1}, {5}, {1.0}), std::invalid_argument);      // col out of range
  EXPECT_THROW(Csr(1, 3, {0, 2}, {1, 1}, {1.0, 1.0}), std::invalid_argument);  // duplicate col
  EXPECT_THROW(Csr(1, 3, {0, 2}, {2, 1}, {1.0, 1.0}), std::invalid_argument);  // unsorted
}

TEST(Csr, EmptyMatrix) {
  const Csr a(0, 0, {0}, {}, {});
  EXPECT_EQ(a.nnz(), 0);
  EXPECT_EQ(a.num_rows(), 0);
}

TEST(Csr, EmptyRowsAllowed) {
  const Csr a(3, 3, {0, 0, 1, 1}, {2}, {1.0});
  EXPECT_EQ(a.row_size(0), 0);
  EXPECT_EQ(a.row_size(1), 1);
  EXPECT_EQ(a.row_size(2), 0);
}

// ------------------------------------------------------------ convert ----

TEST(Convert, CooCsrRoundTrip) {
  const Csr a = small_example();
  const Csr b = to_csr(to_coo(a));
  EXPECT_EQ(a, b);
}

TEST(Convert, TransposeTwiceIsIdentity) {
  const Csr a = small_example();
  EXPECT_EQ(transpose(transpose(a)), a);
}

TEST(Convert, TransposeMapsEntries) {
  const Csr a = small_example();
  const Csr at = transpose(a);
  EXPECT_EQ(at.num_rows(), 3);
  EXPECT_TRUE(at.has_entry(2, 0));   // a(0,2) -> at(2,0)
  EXPECT_TRUE(at.has_entry(0, 2));   // a(2,0) -> at(0,2)
  EXPECT_DOUBLE_EQ(at.row_vals(2)[0], 2.0);
}

TEST(Convert, TransposeRectangular) {
  Coo coo(2, 4);
  coo.add(0, 3, 7.0);
  coo.add(1, 0, 2.0);
  const Csr a = to_csr(std::move(coo));
  const Csr at = transpose(a);
  EXPECT_EQ(at.num_rows(), 4);
  EXPECT_EQ(at.num_cols(), 2);
  EXPECT_TRUE(at.has_entry(3, 0));
  EXPECT_TRUE(at.has_entry(0, 1));
}

TEST(Convert, TransposeRandomProperty) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    const Csr a = random_square(50, 6, 1000 + trial);
    const Csr at = transpose(a);
    EXPECT_EQ(at.nnz(), a.nnz());
    for (idx_t i = 0; i < a.num_rows(); ++i) {
      for (idx_t j : a.row_cols(i)) EXPECT_TRUE(at.has_entry(j, i));
    }
  }
}

TEST(Convert, SymmetrizedPatternIsSymmetric) {
  const Csr a = small_example();
  const Csr s = symmetrized_pattern(a);
  for (idx_t i = 0; i < s.num_rows(); ++i) {
    for (idx_t j : s.row_cols(i)) EXPECT_TRUE(s.has_entry(j, i));
  }
  // a(0,2)=2 and a(2,0)=4 merge to 6 in both mirror positions.
  EXPECT_DOUBLE_EQ(s.row_vals(0)[1], 6.0);
}

TEST(Convert, WithFullDiagonalInsertsMissing) {
  Coo coo(3, 3);
  coo.add(0, 1, 1.0);
  const Csr a = to_csr(std::move(coo));
  EXPECT_EQ(a.num_diag_entries(), 0);
  const Csr b = with_full_diagonal(a, 9.0);
  EXPECT_EQ(b.num_diag_entries(), 3);
  EXPECT_EQ(b.nnz(), 4);
  EXPECT_DOUBLE_EQ(b.row_vals(1)[0], 9.0);
  // Existing entries untouched.
  EXPECT_TRUE(b.has_entry(0, 1));
}

TEST(Convert, EmptyMatrixRoundTrips) {
  const Csr a(0, 0, {0}, {}, {});
  EXPECT_EQ(transpose(a).num_rows(), 0);
  EXPECT_EQ(to_csr(to_coo(a)), a);
}

TEST(Convert, TransposeOfEmptyRowsAndCols) {
  const Csr a(3, 4, {0, 0, 1, 1}, {2}, {5.0});
  const Csr at = transpose(a);
  EXPECT_EQ(at.num_rows(), 4);
  EXPECT_EQ(at.num_cols(), 3);
  EXPECT_EQ(at.nnz(), 1);
  EXPECT_TRUE(at.has_entry(2, 1));
}

TEST(Convert, SymmetrizedPatternRejectsRectangular) {
  const Csr a(2, 3, {0, 0, 1}, {2}, {1.0});
  EXPECT_THROW(symmetrized_pattern(a), std::invalid_argument);
  EXPECT_THROW(with_full_diagonal(a), std::invalid_argument);
}

TEST(Convert, WithFullDiagonalIdempotent) {
  const Csr a = small_example();
  EXPECT_EQ(with_full_diagonal(a), a);  // already full
}

// -------------------------------------------------------------- stats ----

TEST(Stats, SmallExample) {
  const MatrixStats s = compute_stats(small_example());
  EXPECT_EQ(s.numRows, 3);
  EXPECT_EQ(s.nnz, 5);
  EXPECT_EQ(s.minPerRow, 1);
  EXPECT_EQ(s.maxPerRow, 2);
  EXPECT_NEAR(s.avgPerRow, 5.0 / 3.0, 1e-12);
  EXPECT_EQ(s.minPerCol, 1);   // column 1
  EXPECT_EQ(s.maxPerCol, 2);
  EXPECT_EQ(s.minPerRowCol, 1);
  EXPECT_EQ(s.maxPerRowCol, 2);
  EXPECT_EQ(s.numDiagEntries, 3);
  // (0,2)/(2,0) are both stored, so the pattern is symmetric even though
  // the values differ.
  EXPECT_TRUE(s.structurallySymmetric);
}

TEST(Stats, DetectsStructuralAsymmetry) {
  Coo coo(2, 2);
  coo.add(0, 1, 1.0);
  const MatrixStats s = compute_stats(to_csr(std::move(coo)));
  EXPECT_FALSE(s.structurallySymmetric);
}

TEST(Stats, DetectsStructuralSymmetry) {
  const Csr a = stencil2d(4, 4);
  const MatrixStats s = compute_stats(a);
  EXPECT_TRUE(s.structurallySymmetric);
  EXPECT_EQ(s.minPerRow, 3);  // corner: diag + 2 neighbors
  EXPECT_EQ(s.maxPerRow, 5);
}

TEST(Stats, ToStringMentionsShape) {
  const std::string s = to_string(compute_stats(small_example()));
  EXPECT_NE(s.find("3x3"), std::string::npos);
  EXPECT_NE(s.find("nnz=5"), std::string::npos);
}

}  // namespace
}  // namespace fghp::sparse
