// Decomposition-model tests: structure of the built graphs/hypergraphs,
// decode correctness, consistency condition, dummy diagonal vertices,
// checkerboard grids.
#include <gtest/gtest.h>

#include <set>

#include "hypergraph/validate.hpp"
#include "models/checkerboard.hpp"
#include "models/decomposition.hpp"
#include "models/finegrain.hpp"
#include "models/graph_model.hpp"
#include "models/hypergraph1d.hpp"
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/generators.hpp"

namespace fghp::model {
namespace {

sparse::Csr paper_figure_matrix() {
  // A 4x4 matrix echoing Figure 1: row i has entries at h, i, k, j;
  // column j has entries at i, j, l.
  // Use indices: h=0, i=1, k=2, j=3, and an extra row l=... keep 4x4:
  // rows: 0..3. Entries: (1,0),(1,1),(1,2),(1,3) (row-net m_i of size 4),
  // (0,3),(1,3),(3,3) column-net n_j of size 3, plus diagonal fill.
  sparse::Coo coo(4, 4);
  coo.add(0, 0, 1);
  coo.add(0, 3, 1);
  coo.add(1, 0, 1);
  coo.add(1, 1, 1);
  coo.add(1, 2, 1);
  coo.add(1, 3, 1);
  coo.add(2, 2, 1);
  coo.add(3, 3, 1);
  return to_csr(std::move(coo));
}

// ------------------------------------------------------- decomposition ----

TEST(Decomposition, ValidateCatchesShapeErrors) {
  const sparse::Csr a = sparse::identity(3);
  Decomposition d;
  d.numProcs = 2;
  d.nnzOwner = {0, 1};  // wrong size
  d.xOwner = {0, 1, 0};
  d.yOwner = {0, 1, 0};
  EXPECT_THROW(validate(a, d), std::invalid_argument);
  d.nnzOwner = {0, 1, 2};  // out of range
  EXPECT_THROW(validate(a, d), std::invalid_argument);
  d.nnzOwner = {0, 1, 1};
  EXPECT_NO_THROW(validate(a, d));
}

TEST(Decomposition, LoadStats) {
  const sparse::Csr a = sparse::identity(4);
  Decomposition d;
  d.numProcs = 2;
  d.nnzOwner = {0, 0, 0, 1};
  d.xOwner = {0, 0, 0, 1};
  d.yOwner = {0, 0, 0, 1};
  const LoadStats s = compute_loads(a, d);
  EXPECT_EQ(s.nnzPerProc, (std::vector<weight_t>{3, 1}));
  EXPECT_EQ(s.maxLoad, 3);
  EXPECT_NEAR(s.percentImbalance, 50.0, 1e-9);
  EXPECT_TRUE(symmetric_vectors(d));
  d.yOwner = {1, 0, 0, 1};
  EXPECT_FALSE(symmetric_vectors(d));
}

// --------------------------------------------------------- graph model ----

TEST(GraphModel, BuildsSymmetrizedGraphWithRowWeights) {
  const sparse::Csr a = paper_figure_matrix();
  const gp::Graph g = build_standard_graph(a);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.vertex_weight(1), 4);  // row 1 has 4 nonzeros
  EXPECT_EQ(g.vertex_weight(2), 1);
  // a(0,3) and a(3,0)? only a(0,3) stored -> edge weight 1.
  for (const gp::Adj& adj : g.neighbors(0)) {
    if (adj.to == 3) {
      EXPECT_EQ(adj.weight, 1);
    }
    if (adj.to == 1) {
      EXPECT_EQ(adj.weight, 1);  // only a(1,0)
    }
  }
}

TEST(GraphModel, SymmetricPairGetsWeightTwo) {
  sparse::Coo coo(2, 2);
  coo.add(0, 1, 1);
  coo.add(1, 0, 1);
  const gp::Graph g = build_standard_graph(to_csr(std::move(coo)));
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.neighbors(0)[0].weight, 2);
}

TEST(GraphModel, DecodeRowwiseConformal) {
  const sparse::Csr a = paper_figure_matrix();
  const std::vector<idx_t> rowPart = {0, 1, 0, 1};
  const Decomposition d = decode_rowwise(a, rowPart, 2);
  EXPECT_TRUE(symmetric_vectors(d));
  EXPECT_EQ(d.xOwner, rowPart);
  // Every nonzero of row i belongs to rowPart[i].
  std::size_t e = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t k = 0; k < a.row_size(i); ++k)
      EXPECT_EQ(d.nnzOwner[e++], rowPart[static_cast<std::size_t>(i)]);
  }
}

TEST(GraphModel, EndToEndBalanced) {
  const sparse::Csr a = sparse::random_square(200, 6, 3);
  part::PartitionConfig cfg;
  const ModelRun run = run_graph_model(a, 4, cfg);
  const LoadStats loads = compute_loads(a, run.decomp);
  // 1D rowwise balance is on row weights; generous bound.
  EXPECT_LT(loads.percentImbalance, 10.0);
  EXPECT_TRUE(symmetric_vectors(run.decomp));
}

// ------------------------------------------------------- 1D hypergraph ----

TEST(Hypergraph1d, ColumnNetStructure) {
  const sparse::Csr a = paper_figure_matrix();
  const hg::Hypergraph h = build_colnet_hypergraph(a);
  EXPECT_EQ(h.num_vertices(), 4);
  EXPECT_EQ(h.num_nets(), 4);
  hg::validate_or_throw(h);
  // Column 3 has nonzeros in rows 0, 1, 3 -> net {0,1,3}.
  std::set<idx_t> n3(h.pins(3).begin(), h.pins(3).end());
  EXPECT_EQ(n3, (std::set<idx_t>{0, 1, 3}));
  // Column 1: only row 1 -> net {1} (consistency pin already there).
  EXPECT_EQ(h.net_size(1), 1);
  // Vertex weights = row nonzero counts.
  EXPECT_EQ(h.vertex_weight(1), 4);
}

TEST(Hypergraph1d, ConsistencyPinAddedWhenDiagonalMissing) {
  sparse::Coo coo(3, 3);
  coo.add(0, 1, 1);  // column 1 has row 0 only; a_11 missing
  coo.add(1, 0, 1);
  coo.add(2, 2, 1);
  const hg::Hypergraph h = build_colnet_hypergraph(to_csr(std::move(coo)));
  // Net for column 1 must contain row 1 as consistency pin.
  std::set<idx_t> n1(h.pins(1).begin(), h.pins(1).end());
  EXPECT_TRUE(n1.count(1) == 1);
  EXPECT_EQ(n1, (std::set<idx_t>{0, 1}));
}

TEST(Hypergraph1d, EndToEndBalancedAndConformal) {
  const sparse::Csr a = sparse::random_square(200, 6, 4);
  part::PartitionConfig cfg;
  const ModelRun run = run_hypergraph1d(a, 4, cfg);
  EXPECT_TRUE(symmetric_vectors(run.decomp));
  EXPECT_LT(compute_loads(a, run.decomp).percentImbalance, 10.0);
}

// ----------------------------------------------------------- finegrain ----

TEST(FineGrain, StructureMatchesPaper) {
  const sparse::Csr a = paper_figure_matrix();  // 8 nonzeros, full diag
  const FineGrainModel m = build_finegrain(a);
  EXPECT_EQ(m.numRealVertices, 8);
  EXPECT_EQ(m.h.num_vertices(), 8);           // no dummies needed
  EXPECT_EQ(m.h.num_nets(), 8);               // 2 * M
  hg::validate_or_throw(m.h);
  // Every real vertex has exactly two nets (its row net and column net).
  for (idx_t v = 0; v < m.numRealVertices; ++v) EXPECT_EQ(m.h.vertex_degree(v), 2);
  // Row net of row 1 has 4 pins; column net of column 3 has 3 pins.
  EXPECT_EQ(m.h.net_size(m.row_net(1)), 4);
  EXPECT_EQ(m.h.net_size(m.col_net(3)), 3);
  // Unit weights, unit costs.
  EXPECT_EQ(m.h.total_vertex_weight(), 8);
  EXPECT_EQ(m.h.net_cost(0), 1);
}

TEST(FineGrain, VertexNetIncidenceIsRowAndColumn) {
  const sparse::Csr a = paper_figure_matrix();
  const FineGrainModel m = build_finegrain(a);
  // Entry (1,2) is CSR entry index: row0 has 2 entries, then (1,0),(1,1),(1,2)
  // => index 4.
  const idx_t v = 4;
  std::set<idx_t> nets(m.h.nets(v).begin(), m.h.nets(v).end());
  EXPECT_EQ(nets, (std::set<idx_t>{m.row_net(1), m.col_net(2)}));
}

TEST(FineGrain, DummyVerticesForMissingDiagonals) {
  sparse::Coo coo(3, 3);
  coo.add(0, 1, 1);
  coo.add(1, 0, 1);
  coo.add(2, 2, 1);
  const sparse::Csr a = to_csr(std::move(coo));  // diag present only at (2,2)
  const FineGrainModel m = build_finegrain(a);
  EXPECT_EQ(m.numRealVertices, 3);
  EXPECT_EQ(m.h.num_vertices(), 5);  // dummies for rows 0 and 1
  // Dummies carry zero weight.
  EXPECT_EQ(m.h.total_vertex_weight(), 3);
  // Consistency: diagVertex[j] is a pin of both m_j and n_j.
  for (idx_t j = 0; j < 3; ++j) {
    const idx_t dv = m.diagVertex[static_cast<std::size_t>(j)];
    std::set<idx_t> nets(m.h.nets(dv).begin(), m.h.nets(dv).end());
    EXPECT_TRUE(nets.count(m.row_net(j)) == 1) << "j=" << j;
    EXPECT_TRUE(nets.count(m.col_net(j)) == 1) << "j=" << j;
  }
  hg::validate_or_throw(m.h);
}

TEST(FineGrain, DecodeAssignsVectorsToDiagonalOwners) {
  const sparse::Csr a = paper_figure_matrix();
  const FineGrainModel m = build_finegrain(a);
  std::vector<idx_t> assign(static_cast<std::size_t>(m.h.num_vertices()));
  for (std::size_t v = 0; v < assign.size(); ++v) assign[v] = static_cast<idx_t>(v % 3);
  const hg::Partition p(m.h, 3, assign);
  const Decomposition d = decode_finegrain(a, m, p);
  EXPECT_TRUE(symmetric_vectors(d));
  for (idx_t j = 0; j < a.num_rows(); ++j) {
    EXPECT_EQ(d.xOwner[static_cast<std::size_t>(j)],
              p.part_of(m.diagVertex[static_cast<std::size_t>(j)]));
  }
  for (idx_t e = 0; e < a.nnz(); ++e)
    EXPECT_EQ(d.nnzOwner[static_cast<std::size_t>(e)], p.part_of(e));
}

TEST(FineGrain, EndToEndBalancedUnderUnitWeights) {
  const sparse::Csr a = sparse::random_square(150, 6, 5);
  part::PartitionConfig cfg;
  const ModelRun run = run_finegrain(a, 8, cfg);
  EXPECT_TRUE(symmetric_vectors(run.decomp));
  // Unit task weights: the partitioner's eps bound carries to the loads.
  EXPECT_LT(compute_loads(a, run.decomp).percentImbalance, 100.0 * cfg.epsilon + 1.0);
}

TEST(FineGrain, RequiresSquare) {
  sparse::Coo coo(2, 3);
  coo.add(0, 2, 1);
  EXPECT_THROW(build_finegrain(to_csr(std::move(coo))), std::invalid_argument);
}

// -------------------------------------------------------- checkerboard ----

TEST(Checkerboard, GridOwnershipPattern) {
  const sparse::Csr a = sparse::dense_square(8);
  const Decomposition d = checkerboard_decompose(a, 2, 2);
  EXPECT_EQ(d.numProcs, 4);
  validate(a, d);
  EXPECT_TRUE(symmetric_vectors(d));
  // Dense 8x8 with equal splits: entry (0,0) on proc 0, (7,7) on proc 3.
  EXPECT_EQ(d.nnzOwner.front(), 0);
  EXPECT_EQ(d.nnzOwner.back(), 3);
  // Block structure: owner depends only on (rowBlock, colBlock).
  std::size_t e = 0;
  for (idx_t i = 0; i < 8; ++i) {
    for (idx_t j = 0; j < 8; ++j, ++e) {
      EXPECT_EQ(d.nnzOwner[e], (i / 4) * 2 + (j / 4));
    }
  }
}

TEST(Checkerboard, BalancesNonzerosAcrossBlocks) {
  const sparse::Csr a = sparse::random_square(400, 8, 6);
  const Decomposition d = checkerboard_decompose(a, 4, 4);
  const LoadStats loads = compute_loads(a, d);
  // Cartesian products of balanced 1D splits cannot guarantee tight 2D
  // balance; just require every processor got work and no pathological skew.
  EXPECT_LT(loads.percentImbalance, 100.0);
}

TEST(Checkerboard, KFactorization) {
  const sparse::Csr a = sparse::dense_square(12);
  EXPECT_EQ(checkerboard_decompose_k(a, 16).numProcs, 16);
  EXPECT_EQ(checkerboard_decompose_k(a, 12).numProcs, 12);
  EXPECT_EQ(checkerboard_decompose_k(a, 7).numProcs, 7);  // 1 x 7 grid
}

TEST(Checkerboard, OneByOneGridOwnsEverything) {
  const sparse::Csr a = sparse::random_square(50, 4, 7);
  const Decomposition d = checkerboard_decompose(a, 1, 1);
  for (idx_t p : d.nnzOwner) EXPECT_EQ(p, 0);
}

}  // namespace
}  // namespace fghp::model
