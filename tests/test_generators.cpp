// Generator and test-suite tests: structural invariants of every generator
// plus a parameterized sweep asserting that each named suite analog matches
// the paper's Table 1 statistics (exact row counts, nonzeros within
// tolerance).
#include <gtest/gtest.h>

#include <cmath>

#include "sparse/convert.hpp"
#include "sparse/generators.hpp"
#include "sparse/stats.hpp"
#include "sparse/testsuite.hpp"

namespace fghp::sparse {
namespace {

// -------------------------------------------------------- generators ----

TEST(Generators, Stencil2dShape) {
  const Csr a = stencil2d(5, 7);
  EXPECT_EQ(a.num_rows(), 35);
  EXPECT_EQ(a.num_diag_entries(), 35);
  const MatrixStats s = compute_stats(a);
  EXPECT_TRUE(s.structurallySymmetric);
  EXPECT_EQ(s.maxPerRow, 5);
  EXPECT_EQ(s.minPerRow, 3);
  // nnz = n + 2 * #grid edges
  EXPECT_EQ(a.nnz(), 35 + 2 * (4 * 7 + 5 * 6));
}

TEST(Generators, Stencil2dSingleCell) {
  const Csr a = stencil2d(1, 1);
  EXPECT_EQ(a.num_rows(), 1);
  EXPECT_EQ(a.nnz(), 1);
}

TEST(Generators, Stencil3dFullKeep) {
  const Csr a = stencil3d(3, 3, 3, 1.0, 1);
  EXPECT_EQ(a.num_rows(), 27);
  const MatrixStats s = compute_stats(a);
  EXPECT_TRUE(s.structurallySymmetric);
  EXPECT_EQ(s.maxPerRow, 7);  // center point
  EXPECT_EQ(a.nnz(), 27 + 2 * (2 * 3 * 3 * 3));
}

TEST(Generators, Stencil3dZeroKeepIsDiagonal) {
  const Csr a = stencil3d(4, 4, 4, 0.0, 1);
  EXPECT_EQ(a.nnz(), 64);
  EXPECT_EQ(a.num_diag_entries(), 64);
}

TEST(Generators, Stencil3dDeterministic) {
  EXPECT_EQ(stencil3d(5, 4, 3, 0.5, 42), stencil3d(5, 4, 3, 0.5, 42));
  EXPECT_NE(stencil3d(5, 4, 3, 0.5, 42), stencil3d(5, 4, 3, 0.5, 43));
}

TEST(Generators, GeometricRespectsCapsAndFloors) {
  GeometricParams p;
  p.n = 500;
  p.avgOffDiagDeg = 6.0;
  p.minOffDiagDeg = 2;
  p.maxOffDiagDeg = 12;
  const Csr a = geometric_matrix(p, 7);
  const MatrixStats s = compute_stats(a);
  EXPECT_TRUE(s.structurallySymmetric);
  EXPECT_EQ(a.num_diag_entries(), 500);
  EXPECT_GE(s.minPerRow, 1 + p.minOffDiagDeg);
  EXPECT_LE(s.maxPerRow, 1 + p.maxOffDiagDeg);
  EXPECT_NEAR(s.avgPerRow, 1.0 + p.avgOffDiagDeg, 2.5);
}

TEST(Generators, GeometricHubsExceedTheCap) {
  GeometricParams p;
  p.n = 600;
  p.avgOffDiagDeg = 4.0;
  p.maxOffDiagDeg = 10;
  p.numHubs = 3;
  p.hubDegree = 80;
  const Csr a = geometric_matrix(p, 21);
  const MatrixStats s = compute_stats(a);
  EXPECT_GE(s.maxPerRow, 60);  // hubs materialized well above the cap
  EXPECT_TRUE(s.structurallySymmetric);
}

TEST(Generators, SkewedBlockStructureKeepsPinsLocal) {
  SkewedParams p;
  p.n = 1200;
  p.targetNnz = 12000;
  p.numDenseCols = 0;
  p.numBlocks = 12;
  p.localFraction = 1.0;  // every non-dense pin stays in its block
  p.bandFraction = 0.0;
  p.includeDiagonal = true;
  const Csr a = skewed_square(p, 5);
  const idx_t blockSize = 100;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      EXPECT_EQ(i / blockSize, j / blockSize) << "cross-block pin at localFraction 1";
    }
  }
}

TEST(Generators, SkewedCouplingWindowConcentratesCrossPins) {
  SkewedParams p;
  p.n = 1200;
  p.targetNnz = 14000;
  p.numDenseCols = 0;
  p.numBlocks = 12;
  p.localFraction = 0.7;
  p.couplingWidth = 10;
  p.uniformCrossFraction = 0.0;
  p.bandFraction = 0.0;
  p.includeDiagonal = true;
  const Csr a = skewed_square(p, 6);
  const idx_t blockSize = 100;
  // Every cross-block pin must land in the first 10 rows of the next block.
  idx_t cross = 0;
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      const idx_t bi = i / blockSize, bj = j / blockSize;
      if (bi == bj) continue;
      ++cross;
      EXPECT_EQ(bi, (bj + 1) % 12) << "cross pin not in the next block";
      EXPECT_LT(i % blockSize, 10) << "cross pin outside the coupling window";
    }
  }
  EXPECT_GT(cross, 100);  // the staircase actually materialized
}

TEST(Generators, SkewedColumnFloorEnforced) {
  SkewedParams p;
  p.n = 500;
  p.targetNnz = 5000;
  p.minPerRow = 1;
  p.minPerCol = 4;
  p.includeDiagonal = true;
  const Csr a = skewed_square(p, 7);
  const MatrixStats s = compute_stats(a);
  EXPECT_GE(s.minPerCol, 4);
}

TEST(Generators, GeometricDeterministic) {
  GeometricParams p;
  p.n = 200;
  p.avgOffDiagDeg = 4.0;
  EXPECT_EQ(geometric_matrix(p, 5), geometric_matrix(p, 5));
}

TEST(Generators, SkewedHitsNnzTarget) {
  SkewedParams p;
  p.n = 2000;
  p.targetNnz = 30000;
  p.minPerRow = 2;
  p.maxColDegree = 300;
  p.numDenseCols = 10;
  const Csr a = skewed_square(p, 3);
  EXPECT_EQ(a.num_rows(), 2000);
  EXPECT_NEAR(static_cast<double>(a.nnz()), 30000.0, 30000.0 * 0.12);
  const MatrixStats s = compute_stats(a);
  EXPECT_GE(s.minPerRow, 2);
  EXPECT_LE(s.maxPerCol, 300);
  EXPECT_GE(s.maxPerCol, 150);  // dense columns materialized
}

TEST(Generators, SkewedWithoutDiagonalLeavesHoles) {
  SkewedParams p;
  p.n = 500;
  p.targetNnz = 4000;
  p.includeDiagonal = false;
  const Csr a = skewed_square(p, 9);
  EXPECT_LT(a.num_diag_entries(), a.num_rows());
}

TEST(Generators, BlockRingShape) {
  BlockRingParams p;
  p.numBlocks = 8;
  p.blockSize = 32;
  p.intraPicksPerNode = 3;
  p.numHubs = 2;
  p.hubDegree = 40;
  const Csr a = block_ring(p, 11);
  EXPECT_EQ(a.num_rows(), 256);
  EXPECT_EQ(a.num_diag_entries(), 256);
  EXPECT_TRUE(compute_stats(a).structurallySymmetric);
}

TEST(Generators, BlockRingWithoutHubsIsBlockDiagonal) {
  BlockRingParams p;
  p.numBlocks = 4;
  p.blockSize = 16;
  p.intraPicksPerNode = 2;
  const Csr a = block_ring(p, 13);
  for (idx_t i = 0; i < a.num_rows(); ++i) {
    for (idx_t j : a.row_cols(i)) {
      EXPECT_EQ(i / 16, j / 16) << "cross-block entry without hubs/ring";
    }
  }
}

TEST(Generators, BlockRingRingCouplesNeighbors) {
  BlockRingParams p;
  p.numBlocks = 4;
  p.blockSize = 16;
  p.intraPicksPerNode = 1;
  p.ringPicksPerNode = 2;
  const Csr a = block_ring(p, 13);
  bool crossBlock = false;
  for (idx_t i = 0; i < a.num_rows() && !crossBlock; ++i) {
    for (idx_t j : a.row_cols(i)) {
      if (i / 16 != j / 16) crossBlock = true;
    }
  }
  EXPECT_TRUE(crossBlock);
}

TEST(Generators, RandomSquareShape) {
  const Csr a = random_square(300, 8, 21);
  EXPECT_EQ(a.num_rows(), 300);
  EXPECT_EQ(a.num_diag_entries(), 300);
  const MatrixStats s = compute_stats(a);
  EXPECT_LE(s.maxPerRow, 8);
  EXPECT_GE(s.avgPerRow, 6.0);  // some duplicate draws collapse
}

TEST(Generators, BandedShape) {
  const Csr a = banded(10, 2);
  EXPECT_EQ(a.row_size(0), 3);
  EXPECT_EQ(a.row_size(5), 5);
  EXPECT_EQ(a.nnz(), 10 * 5 - 2 * (2 + 1));
}

TEST(Generators, IdentityAndDense) {
  EXPECT_EQ(identity(5).nnz(), 5);
  EXPECT_EQ(dense_square(6).nnz(), 36);
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(stencil2d(0, 3), std::invalid_argument);
  EXPECT_THROW(stencil3d(2, 2, 2, 1.5, 1), std::invalid_argument);
  EXPECT_THROW(random_square(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(dense_square(100000), std::invalid_argument);
  SkewedParams p;
  p.n = 10;
  p.targetNnz = 100;
  p.maxColDegree = 10;  // must be < n
  EXPECT_THROW(skewed_square(p, 1), std::invalid_argument);
}

// --------------------------------------------------------- testsuite ----

TEST(TestSuite, HasFourteenEntriesInPaperOrder) {
  const auto& s = suite();
  ASSERT_EQ(s.size(), 14u);
  EXPECT_EQ(s.front().name, "sherman3");
  EXPECT_EQ(s.back().name, "finan512");
  // Paper lists matrices by increasing nonzero count.
  for (std::size_t i = 1; i < s.size(); ++i)
    EXPECT_LE(s[i - 1].paper.nnz, s[i].paper.nnz);
}

TEST(TestSuite, LookupThrowsOnUnknown) {
  EXPECT_THROW(suite_entry("not-a-matrix"), std::invalid_argument);
  EXPECT_THROW(make_matrix("not-a-matrix"), std::invalid_argument);
  EXPECT_THROW(make_matrix("sherman3", 1, 0.0), std::invalid_argument);
  EXPECT_THROW(make_matrix("sherman3", 1, 1.5), std::invalid_argument);
}

TEST(TestSuite, Deterministic) {
  EXPECT_EQ(make_matrix("sherman3", 4), make_matrix("sherman3", 4));
  EXPECT_NE(make_matrix("cq9", 4, 0.2), make_matrix("cq9", 5, 0.2));
}

TEST(TestSuite, ScaleShrinksProportionally) {
  const Csr full = make_matrix("ken-11", 1, 1.0);
  const Csr half = make_matrix("ken-11", 1, 0.5);
  EXPECT_NEAR(static_cast<double>(half.num_rows()),
              0.5 * static_cast<double>(full.num_rows()), 10.0);
  EXPECT_LT(half.nnz(), full.nnz());
}

class SuiteFidelity : public ::testing::TestWithParam<SuiteEntry> {};

TEST_P(SuiteFidelity, MatchesTable1Statistics) {
  const SuiteEntry& e = GetParam();
  // finan512 / world / mod2 are large; a reduced scale keeps the test fast
  // while full scale is exercised by bench_table1.
  const double scale = e.paper.nnz > 300000 ? 0.25 : 1.0;
  const Csr a = make_matrix(e.name, 1, scale);
  const MatrixStats s = compute_stats(a);

  EXPECT_EQ(a.num_rows(), a.num_cols());
  if (scale == 1.0) {
    EXPECT_NEAR(static_cast<double>(a.num_rows()),
                static_cast<double>(e.paper.rows), 5.0);
    EXPECT_NEAR(static_cast<double>(a.nnz()), static_cast<double>(e.paper.nnz),
                0.15 * static_cast<double>(e.paper.nnz));
    EXPECT_NEAR(s.avgPerRowCol, e.paper.avgPerRowCol, 0.2 * e.paper.avgPerRowCol + 0.5);
    // Heavy tail materialized within a factor ~2.
    EXPECT_GE(static_cast<double>(s.maxPerRowCol),
              0.45 * static_cast<double>(e.paper.maxPerRowCol));
    EXPECT_LE(static_cast<double>(s.maxPerRowCol),
              2.2 * static_cast<double>(e.paper.maxPerRowCol));
  } else {
    // Scaled analog: average degree is preserved.
    EXPECT_NEAR(s.avgPerRowCol, e.paper.avgPerRowCol, 0.25 * e.paper.avgPerRowCol + 0.5);
  }
  if (e.symmetric) {
    EXPECT_TRUE(s.structurallySymmetric);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMatrices, SuiteFidelity, ::testing::ValuesIn(suite()),
                         [](const ::testing::TestParamInfo<SuiteEntry>& paramInfo) {
                           std::string n = paramInfo.param.name;
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           return n;
                         });

}  // namespace
}  // namespace fghp::sparse
