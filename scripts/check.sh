#!/usr/bin/env bash
# Full local verification: configure, build, run every test, smoke-run the
# examples, then run the quick benchmark sweep. Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

echo "--- ThreadSanitizer: task-parallel recursive bisection ---"
cmake -B build-tsan -G Ninja -DFGHP_SANITIZE=thread \
      -DFGHP_BUILD_BENCH=OFF -DFGHP_BUILD_EXAMPLES=OFF > /dev/null
cmake --build build-tsan --target test_parallel_rb
FGHP_THREADS=8 ./build-tsan/tests/test_parallel_rb

echo "--- Address/UB sanitizers: Matrix Market reader ---"
cmake -B build-asan -G Ninja -DFGHP_SANITIZE=address,undefined \
      -DFGHP_BUILD_BENCH=OFF -DFGHP_BUILD_EXAMPLES=OFF > /dev/null
cmake --build build-asan --target test_mmio test_sparse
./build-asan/tests/test_mmio
./build-asan/tests/test_sparse

echo "--- examples ---"
./build/examples/quickstart --matrix sherman3 --scale 0.25 --k 8
./build/examples/anatomy_finegrain
./build/examples/cg_solver --n 32 --k 4
./build/examples/reduction_preassigned --n 1000 --k 4
tmp=$(mktemp -d)
./build/examples/fghp_tool gen sherman3 --out "$tmp/m.mtx" --scale 0.2
./build/examples/fghp_tool stats "$tmp/m.mtx"
./build/examples/fghp_tool partition "$tmp/m.mtx" --model finegrain --k 8 --out "$tmp/d.decomp"
./build/examples/fghp_tool simulate "$tmp/m.mtx" "$tmp/d.decomp" --reps 3
rm -rf "$tmp"

echo "--- quick benches (reduced scale) ---"
FGHP_SCALE=0.15 FGHP_SEEDS=1 FGHP_K=16 ./build/bench/bench_table2
FGHP_SCALE=0.15 ./build/bench/bench_ablation_checkerboard

echo "ALL CHECKS PASSED"
