#!/usr/bin/env bash
# Full local verification: configure, build, run every test, smoke-run the
# examples, then run the quick benchmark sweep. Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

echo "--- ThreadSanitizer: task-parallel recursive bisection + tracing + cancel ---"
cmake -B build-tsan -G Ninja -DFGHP_SANITIZE=thread \
      -DFGHP_BUILD_BENCH=OFF -DFGHP_BUILD_EXAMPLES=OFF > /dev/null
cmake --build build-tsan --target test_parallel_rb test_fastpart test_trace test_cancel \
      test_spgemm
FGHP_THREADS=8 ./build-tsan/tests/test_parallel_rb
# The fast-path partitioners share the task-parallel RB engine (geometric)
# and must stay bit-identical at 8 threads; TSan watches the forked splits.
FGHP_THREADS=8 ./build-tsan/tests/test_fastpart
./build-tsan/tests/test_trace
# Cancellation, watchdog heartbeats, and pool shutdown race real worker
# threads by construction — exactly what TSan is for.
./build-tsan/tests/test_cancel
# The SpGEMM tests drive the generic executor's threaded BSP supersteps
# (two gathered input spaces, retry/fallback ladder) under TSan.
./build-tsan/tests/test_spgemm

echo "--- Address/UB sanitizers: Matrix Market reader + compiled image ---"
cmake -B build-asan -G Ninja -DFGHP_SANITIZE=address,undefined \
      -DFGHP_BUILD_BENCH=OFF -DFGHP_BUILD_EXAMPLES=ON > /dev/null
cmake --build build-asan --target test_mmio test_sparse test_fault test_errors \
      test_compiled fghp_tool
./build-asan/tests/test_mmio
./build-asan/tests/test_sparse
./build-asan/tests/test_fault
./build-asan/tests/test_errors
# The compiled-session tests exercise the cache-reordered slot tables and the
# SIMD kernels over the whole suite — exactly where an off-by-one in a
# pre-translated slot would scribble out of bounds.
./build-asan/tests/test_compiled

echo "--- fault-injection sweep (ASan/UBSan) ---"
# Inject every registered fault site once into a real partition->simulate
# pipeline. Each run must either recover (exit 0) or fail with its typed
# error category (exit 3..9) — never a crash (>= 128), a generic failure (1)
# or a usage error (2). The cancel.* sites surface as exit 8 (cancelled).
ftmp=$(mktemp -d)
tool=./build-asan/examples/fghp_tool
"$tool" gen sherman3 --out "$ftmp/m.mtx" --scale 0.15 > /dev/null
"$tool" partition "$ftmp/m.mtx" --model finegrain --k 4 --out "$ftmp/d.decomp" > /dev/null
check_rc() {  # $1 = site, $2 = command name, $3 = exit code
  case "$3" in
    0|[3-9]) echo "  site $1 ($2) -> exit $3 (ok)" ;;
    *) echo "  site $1 ($2) -> exit $3 (NOT a typed error)"
       cat "$ftmp/err.txt"; exit 1 ;;
  esac
}
for site in $("$tool" faults); do
  rc=0
  FGHP_FAULT_SPEC="$site:1" "$tool" partition "$ftmp/m.mtx" --model finegrain --k 4 \
      --strict --out "$ftmp/d2.decomp" > /dev/null 2> "$ftmp/err.txt" || rc=$?
  check_rc "$site" partition "$rc"
  # The graph baseline shares the RB engine but has its own fault sites
  # (grb.*, gfm.*); sweep it too so both recovery ladders stay covered.
  rc=0
  FGHP_FAULT_SPEC="$site:1" "$tool" partition "$ftmp/m.mtx" --model graph --k 4 \
      --strict --out "$ftmp/d3.decomp" > /dev/null 2> "$ftmp/err.txt" || rc=$?
  check_rc "$site" partition-graph "$rc"
  # The fast-path partitioners have their own ladder rungs (geo.*,
  # stream.*); sweeping every site through both keeps all three recovery
  # ladders covered.
  rc=0
  FGHP_FAULT_SPEC="$site:1" "$tool" partition "$ftmp/m.mtx" --model finegrain --k 4 \
      --method geometric --strict --out "$ftmp/d4.decomp" > /dev/null 2> "$ftmp/err.txt" || rc=$?
  check_rc "$site" partition-geometric "$rc"
  rc=0
  FGHP_FAULT_SPEC="$site:1" "$tool" partition "$ftmp/m.mtx" --model finegrain --k 4 \
      --method streaming --strict --out "$ftmp/d5.decomp" > /dev/null 2> "$ftmp/err.txt" || rc=$?
  check_rc "$site" partition-streaming "$rc"
  rc=0
  FGHP_FAULT_SPEC="$site:1" "$tool" simulate "$ftmp/m.mtx" "$ftmp/d.decomp" --reps 1 \
      > /dev/null 2> "$ftmp/err.txt" || rc=$?
  check_rc "$site" simulate "$rc"
done

echo "--- deadline sweep (ASan/UBSan) ---"
# Shrinking time budgets against the same instrumented binary. With the
# degradation ladder on (the default), every budget — including an already
# expired one — must still produce a strict-validated partition and exit 0;
# with --no-degrade an expired budget must surface as the typed deadline
# exit (9). Either way: no crashes, no generic failures.
for ms in 10000 100 10 1 0; do
  rc=0
  "$tool" partition "$ftmp/m.mtx" --model finegrain --k 8 --strict \
      --timeout-ms "$ms" --out "$ftmp/ddl.decomp" > /dev/null 2> "$ftmp/err.txt" || rc=$?
  case "$rc" in
    0|8|9) echo "  timeout ${ms}ms (partition) -> exit $rc (ok)" ;;
    *) echo "  timeout ${ms}ms (partition) -> exit $rc (NOT a typed outcome)"
       cat "$ftmp/err.txt"; exit 1 ;;
  esac
done
# An already-expired budget with degradation disabled must be the typed
# deadline error — not a crash, not a silent success.
rc=0
"$tool" partition "$ftmp/m.mtx" --model finegrain --k 8 --strict \
    --timeout-ms 0 --no-degrade --out "$ftmp/ddl.decomp" \
    > /dev/null 2> "$ftmp/err.txt" || rc=$?
if [ "$rc" -ne 9 ]; then
  echo "  timeout 0ms --no-degrade -> exit $rc (expected 9)"
  cat "$ftmp/err.txt"; exit 1
fi
echo "  timeout 0ms --no-degrade -> exit 9 (ok)"
# The simulate path checks the token per iteration; the env-var route must
# behave like the flag.
rc=0
FGHP_TIMEOUT_MS=0 "$tool" simulate "$ftmp/m.mtx" "$ftmp/d.decomp" --reps 2 \
    > /dev/null 2> "$ftmp/err.txt" || rc=$?
if [ "$rc" -ne 9 ]; then
  echo "  FGHP_TIMEOUT_MS=0 simulate -> exit $rc (expected 9)"
  cat "$ftmp/err.txt"; exit 1
fi
echo "  FGHP_TIMEOUT_MS=0 simulate -> exit 9 (ok)"
rm -rf "$ftmp"

echo "--- clang-tidy (non-fatal) ---"
# Advisory static analysis over the core partition/graph sources; findings are
# printed but never fail the check (the profile is in .clang-tidy).
if command -v clang-tidy > /dev/null; then
  cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  clang-tidy -p build --quiet \
      src/partition/rb_driver.cpp src/partition/hg/recursive.cpp \
      src/partition/gp/grecursive.cpp src/partition/gp/match.cpp \
      src/graph/gvalidate.cpp \
      || echo "clang-tidy reported findings (advisory only)"
else
  echo "clang-tidy not installed; skipping"
fi

echo "--- examples ---"
./build/examples/quickstart --matrix sherman3 --scale 0.25 --k 8
./build/examples/anatomy_finegrain
./build/examples/cg_solver --n 32 --k 4
./build/examples/reduction_preassigned --n 1000 --k 4
tmp=$(mktemp -d)
./build/examples/fghp_tool gen sherman3 --out "$tmp/m.mtx" --scale 0.2
./build/examples/fghp_tool stats "$tmp/m.mtx"
./build/examples/fghp_tool partition "$tmp/m.mtx" --model finegrain --k 8 --out "$tmp/d.decomp"
./build/examples/fghp_tool simulate "$tmp/m.mtx" "$tmp/d.decomp" --reps 3
./build/examples/fghp_tool partition "$tmp/m.mtx" --model finegrain --k 8 \
    --method geometric --strict --json > /dev/null
./build/examples/fghp_tool partition "$tmp/m.mtx" --model finegrain --k 8 \
    --method streaming --strict --json > /dev/null
./build/examples/fghp_tool spgemm "$tmp/m.mtx" --k 8 --reps 3
# B != A through the --b-matrix flag: same suite matrix and scale (so the
# inner dimensions agree) but a different generator seed.
./build/examples/fghp_tool gen sherman3 --out "$tmp/b.mtx" --scale 0.2 --seed 2
./build/examples/fghp_tool spgemm "$tmp/m.mtx" --b-matrix "$tmp/b.mtx" --k 8 --reps 3
./build/examples/triangle_count
rm -rf "$tmp"

echo "--- trace smoke: Chrome-trace & metrics export ---"
# One partition and one simulate through both capture routes (--trace-out
# flag, FGHP_TRACE env). Every artifact must be valid JSON and each trace
# must actually contain spans — an exporter that silently records nothing
# would otherwise pass.
ttmp=$(mktemp -d)
ttool=./build/examples/fghp_tool
"$ttool" gen sherman3 --out "$ttmp/m.mtx" --scale 0.2 > /dev/null
"$ttool" partition "$ttmp/m.mtx" --model finegrain --k 8 --out "$ttmp/d.decomp" \
    --trace-out "$ttmp/partition_trace.json" --metrics-out "$ttmp/metrics.json" > /dev/null
FGHP_TRACE="$ttmp/simulate_trace.json" "$ttool" simulate "$ttmp/m.mtx" "$ttmp/d.decomp" \
    --reps 2 > /dev/null
for f in partition_trace simulate_trace metrics; do
  python3 -m json.tool "$ttmp/$f.json" > /dev/null || {
    echo "trace smoke FAILED: $f.json is not valid JSON"; exit 1; }
done
for f in partition_trace simulate_trace; do
  spans=$(grep -c '"ph":"X"' "$ttmp/$f.json" || true)
  if [ "${spans:-0}" -eq 0 ]; then
    echo "trace smoke FAILED: $f.json contains no spans"; exit 1
  fi
  echo "  $f.json: $spans spans"
done
rm -rf "$ttmp"

echo "--- report smoke: structured RunReport + volume audit ---"
# One partition and one simulate with --report-out (simulate also with
# --perf, which degrades gracefully where the kernel refuses counters). The
# reports must be valid JSON, every phase's parallel efficiency must lie in
# (0, 1], trace-drop accounting must be present, and the simulate report's
# modeled-vs-measured volume audit must match exactly. Finally the reports
# must render back through `fghp_tool report`.
rtmp=$(mktemp -d)
rtool=./build/examples/fghp_tool
"$rtool" gen sherman3 --out "$rtmp/m.mtx" --scale 0.2 > /dev/null
"$rtool" partition "$rtmp/m.mtx" --model finegrain --k 8 --out "$rtmp/d.decomp" \
    --report-out "$rtmp/partition_report.json" > /dev/null
"$rtool" simulate "$rtmp/m.mtx" "$rtmp/d.decomp" --reps 3 --perf \
    --report-out "$rtmp/simulate_report.json" > /dev/null 2>&1
for f in partition_report simulate_report; do
  python3 -m json.tool "$rtmp/$f.json" > /dev/null || {
    echo "report smoke FAILED: $f.json is not valid JSON"; exit 1; }
done
python3 - "$rtmp" <<'PY'
import json, sys
tmp = sys.argv[1]
for name in ("partition_report", "simulate_report"):
    r = json.load(open(f"{tmp}/{name}.json"))
    if r["run_report_version"] != 1 or r["status"] != "ok":
        sys.exit(f"report smoke FAILED: {name} is not a clean v1 report")
    if "dropped" not in r["trace"]:
        sys.exit(f"report smoke FAILED: {name} has no trace-drop accounting")
    if not r["phases"]:
        sys.exit(f"report smoke FAILED: {name} recorded no phases")
    for p in r["phases"]:
        if not 0.0 < p["parallel_efficiency"] <= 1.0:
            sys.exit(f'report smoke FAILED: {name} phase {p["name"]} '
                     f'efficiency {p["parallel_efficiency"]} outside (0, 1]')
    print(f'  {name}: {len(r["phases"])} phases, {r["trace"]["events"]} events, '
          f'{r["trace"]["dropped"]} dropped')
audit = json.load(open(f"{tmp}/simulate_report.json"))["volume_audit"]
if not (audit["present"] and audit["matches"] and audit["iterations"] == 3):
    sys.exit(f"report smoke FAILED: volume audit did not match: {audit}")
print(f'  volume audit: {audit["iterations"]} iterations, expand '
      f'{audit["measured_expand_words"]} measured == '
      f'{audit["modeled_expand_words"]} modeled * iters (MATCH)')
PY
"$rtool" report "$rtmp/simulate_report.json" | grep -q "RunReport v1" || {
  echo "report smoke FAILED: 'fghp_tool report' did not render"; exit 1; }
rm -rf "$rtmp"

echo "--- FGHP_PERF=OFF build: counters compiled out, results identical ---"
# The compile-time gate: everything must build, the observability tests must
# pass (the refused-open test self-skips), and a --perf run must still
# produce a clean report that says compiled_in=false.
cmake -B build-noperf -G Ninja -DFGHP_PERF=OFF -DFGHP_BUILD_BENCH=OFF > /dev/null
cmake --build build-noperf --target test_report fghp_tool
./build-noperf/tests/test_report
ptmp=$(mktemp -d)
./build-noperf/examples/fghp_tool gen sherman3 --out "$ptmp/m.mtx" --scale 0.15 > /dev/null
./build-noperf/examples/fghp_tool partition "$ptmp/m.mtx" --model finegrain --k 4 \
    --perf --report-out "$ptmp/r.json" --out "$ptmp/d.decomp" > /dev/null
python3 - "$ptmp/r.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
if r["perf"]["compiled_in"]:
    sys.exit("FGHP_PERF=OFF report still claims counters compiled in")
if r["status"] != "ok":
    sys.exit("FGHP_PERF=OFF partition run failed")
print("  FGHP_PERF=OFF: clean report, compiled_in=false")
PY
rm -rf "$ptmp"

echo "--- quick benches (reduced scale) ---"
FGHP_SCALE=0.15 FGHP_SEEDS=1 FGHP_K=16 ./build/bench/bench_table2
FGHP_SCALE=0.15 ./build/bench/bench_ablation_checkerboard

echo "--- perf smoke: compiled SpMV session ---"
# One small matrix through bench_spmv's throughput and roofline sections.
# Catches gross perf breakage (a dead or mis-lowered compiled image reports
# zero/NaN throughput); the JSON stays in build/ for comparison against the
# committed BENCH_spmv.json trajectory.
FGHP_MATRICES=sherman3 FGHP_SCALE=0.05 FGHP_K=16 FGHP_REPS=5 FGHP_STREAM_MB=16 \
    ./build/bench/bench_spmv --json build/bench_spmv_smoke.json
if grep -qiE 'nan|inf' build/bench_spmv_smoke.json; then
  echo "perf smoke FAILED: non-finite value in build/bench_spmv_smoke.json"
  exit 1
fi
gflops=$(grep -o '"compiled_gflops": *[0-9.eE+-]*' build/bench_spmv_smoke.json \
         | head -1 | awk '{print $2}')
awk -v g="${gflops:-0}" 'BEGIN { exit (g > 0) ? 0 : 1 }' || {
  echo "perf smoke FAILED: compiled throughput is ${gflops:-missing} GFLOP/s"
  exit 1
}
echo "  compiled session: $gflops GFLOP/s (artifact: build/bench_spmv_smoke.json)"

# Roofline regression gate: on every (matrix, K) the smoke run shares with
# the committed BENCH_spmv.json, achieved bandwidth must stay above 50 % of
# the committed datapoint. The smoke matrices are far smaller (and so
# cache-resident and faster per byte) than the committed DRAM-scale run, so
# this bound only trips on real execution-path regressions, not on scale.
python3 - <<'PY'
import json, sys
smoke = json.load(open("build/bench_spmv_smoke.json"))
committed = json.load(open("BENCH_spmv.json"))
base = {(r["matrix"], r["k"]): r for r in committed.get("roofline", [])}
checked = 0
for r in smoke.get("roofline", []):
    b = base.get((r["matrix"], r["k"]))
    if b is None:
        continue
    checked += 1
    floor = 0.5 * b["gbps"]
    status = "ok" if r["gbps"] >= floor else "REGRESSED"
    print(f'  roofline {r["matrix"]}/K{r["k"]}: {r["gbps"]:.2f} GB/s '
          f'(committed {b["gbps"]:.2f}, floor {floor:.2f}) {status}')
    if r["gbps"] < floor:
        sys.exit(f'perf smoke FAILED: {r["matrix"]}/K{r["k"]} bandwidth '
                 f'{r["gbps"]:.2f} GB/s below 50% of committed {b["gbps"]:.2f}')
if checked == 0:
    sys.exit("perf smoke FAILED: no roofline datapoints shared with BENCH_spmv.json")
PY

echo "--- perf smoke: SpGEMM through the generic core ---"
# The second workload's gate: cutsize == volume is asserted inside the bench
# (nonzero exit on mismatch), and throughput must be finite and positive. The
# JSON stays in build/ for comparison against the committed BENCH_spgemm.json.
FGHP_MATRICES=sherman3 FGHP_SCALE=0.15 FGHP_K=8 FGHP_REPS=5 \
    ./build/bench/bench_spgemm --json build/bench_spgemm_smoke.json
if grep -qiE 'nan|inf' build/bench_spgemm_smoke.json; then
  echo "perf smoke FAILED: non-finite value in build/bench_spgemm_smoke.json"
  exit 1
fi
sgflops=$(grep -o '"gflops": *[0-9.eE+-]*' build/bench_spgemm_smoke.json \
          | head -1 | awk '{print $2}')
awk -v g="${sgflops:-0}" 'BEGIN { exit (g > 0) ? 0 : 1 }' || {
  echo "perf smoke FAILED: SpGEMM throughput is ${sgflops:-missing} GFLOP/s"
  exit 1
}
echo "  spgemm session: $sgflops GFLOP/s (artifact: build/bench_spgemm_smoke.json)"

echo "--- perf smoke: partitioner Pareto front ---"
# All four fine-grain methods across two structurally different matrices.
# The bench itself exits nonzero on any zero/NaN datapoint; the gate below
# additionally requires the fast path to actually be fast — geometric must
# beat multilevel wall-time on the largest smoke matrix at K=16 (the
# committed BENCH_pareto.json headline is the full-scale version of this).
FGHP_MATRICES=sherman3,finan512 FGHP_SCALE=0.1 FGHP_K=16 FGHP_SPGEMM_SCALE=0.05 \
    ./build/bench/bench_pareto --json build/bench_pareto_smoke.json
python3 - <<'PY'
import json, math, sys
# parse_constant rejects bare NaN/Infinity tokens (matrix names like
# "finan512" make a plain grep for nan/inf useless here)
smoke = json.load(open("build/bench_pareto_smoke.json"),
                  parse_constant=lambda c: sys.exit(
                      f"perf smoke FAILED: non-finite value {c} in JSON"))
for run in smoke["runs"]:
    for key, val in run.items():
        if isinstance(val, float) and not math.isfinite(val):
            sys.exit(f"perf smoke FAILED: non-finite {key} in run {run}")
speedup = smoke.get("headline_speedup", 0.0)
matrix = smoke.get("headline_matrix", "?")
if not speedup or speedup <= 1.0:
    sys.exit(f"perf smoke FAILED: geometric is not faster than multilevel on "
             f"{matrix} at K=16 (speedup {speedup})")
print(f"  pareto headline ({matrix}, K=16): geometric {speedup:.1f}x faster "
      f"than multilevel (artifact: build/bench_pareto_smoke.json)")
PY

echo "ALL CHECKS PASSED"
