#!/usr/bin/env bash
# Full local verification: configure, build, run every test, smoke-run the
# examples, then run the quick benchmark sweep. Mirrors what CI would do.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure

echo "--- examples ---"
./build/examples/quickstart --matrix sherman3 --scale 0.25 --k 8
./build/examples/anatomy_finegrain
./build/examples/cg_solver --n 32 --k 4
./build/examples/reduction_preassigned --n 1000 --k 4
tmp=$(mktemp -d)
./build/examples/fghp_tool gen sherman3 --out "$tmp/m.mtx" --scale 0.2
./build/examples/fghp_tool stats "$tmp/m.mtx"
./build/examples/fghp_tool partition "$tmp/m.mtx" --model finegrain --k 8 --out "$tmp/d.decomp"
./build/examples/fghp_tool simulate "$tmp/m.mtx" "$tmp/d.decomp" --reps 3
rm -rf "$tmp"

echo "--- quick benches (reduced scale) ---"
FGHP_SCALE=0.15 FGHP_SEEDS=1 FGHP_K=16 ./build/bench/bench_table2
FGHP_SCALE=0.15 ./build/bench/bench_ablation_checkerboard

echo "ALL CHECKS PASSED"
